//! Serial vs parallel experiment-engine wall-clock on a quick-scale grid.
//!
//! Measures the same cell grid through `run_cells_parallel` at one worker
//! (the serial degenerate case runs on the calling thread) and at a pool of
//! workers, then writes the speedup ratio to `BENCH_parallel.json` at the
//! workspace root so the perf trajectory is tracked across commits. On a
//! single-core host the ratio is ~1.0 by construction; the engine's win
//! scales with available CPUs because experiment cells share no state.

use criterion::{black_box, Criterion};
use mvqoe_abr::FixedAbr;
use mvqoe_core::{run_cells_parallel, CellSpec, PressureMode, SessionConfig};
use mvqoe_device::DeviceProfile;
use mvqoe_kernel::TrimLevel;
use mvqoe_video::{Fps, Genre, Manifest, Resolution};
use std::time::Instant;

/// A quick-scale grid: 6 cells × 2 repetitions of 12 s sessions.
fn grid() -> Vec<CellSpec<'static>> {
    let mut specs = Vec::new();
    for device in [DeviceProfile::nokia1(), DeviceProfile::nexus5()] {
        for pressure in [
            PressureMode::None,
            PressureMode::Synthetic(TrimLevel::Moderate),
            PressureMode::Synthetic(TrimLevel::Critical),
        ] {
            let mut cfg = SessionConfig::paper_default(device.clone(), pressure, 42);
            cfg.video_secs = 12.0;
            specs.push(CellSpec::new(cfg, 2, || {
                let m = Manifest::full_ladder(Genre::Travel, 12.0);
                let rep = m.representation(Resolution::R480p, Fps::F60).unwrap();
                Box::new(FixedAbr::new(rep))
            }));
        }
    }
    specs
}

/// Median-of-N wall-clock for the grid at a worker count.
fn time_grid(workers: usize, samples: usize) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let specs = grid();
            let start = Instant::now();
            black_box(run_cells_parallel("bench-parallel", &specs, workers));
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let samples = if test_mode { 1 } else { 5 };
    let pool = std::thread::available_parallelism().map_or(4, |p| p.get().max(2));

    // Criterion-shaped reporting for the two paths.
    let mut c = Criterion::default();
    let mut g = c.benchmark_group("engine");
    g.sample_size(samples);
    g.bench_function("grid_serial_1_worker", |b| {
        b.iter(|| run_cells_parallel("bench-parallel", &grid(), 1))
    });
    g.bench_function(&format!("grid_parallel_{pool}_workers"), |b| {
        b.iter(|| run_cells_parallel("bench-parallel", &grid(), pool))
    });
    g.finish();

    // The tracked ratio: serial wall-clock over parallel wall-clock.
    let serial_secs = time_grid(1, samples);
    let parallel_secs = time_grid(pool, samples);
    let speedup = serial_secs / parallel_secs.max(1e-9);
    println!(
        "engine speedup at {pool} workers: {speedup:.2}x ({serial_secs:.3} s -> {parallel_secs:.3} s)"
    );

    if !test_mode {
        // crates/bench -> workspace root.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
        let json = format!(
            "{{\n  \"bench\": \"parallel_engine_quick_grid\",\n  \"workers\": {pool},\n  \
             \"serial_secs\": {serial_secs:.4},\n  \"parallel_secs\": {parallel_secs:.4},\n  \
             \"speedup\": {speedup:.3}\n}}\n"
        );
        match std::fs::write(path, json) {
            Ok(()) => println!("[json] {path}"),
            Err(e) => eprintln!("[json] failed to write {path}: {e}"),
        }
    }
}
