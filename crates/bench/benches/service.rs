//! The live telemetry service vs the in-process fleet engine.
//!
//! Stands up `mvqoe-telemetryd` on loopback and pushes a short-observation
//! fleet through it over concurrent load-generator connections — the full
//! path: simulate, serialize each 1 Hz sample to NDJSON, ship over TCP,
//! parse, replay into observations, fold into mutex-guarded shards. Then
//! hammers `/query/headline` to measure query latency under a folded
//! aggregate. Writes `BENCH_service.json` at the workspace root and acts
//! as its own regression guard: the service path must sustain at least
//! 500 ingested users/s (the committed baseline is far above), stay
//! within 40× of the direct in-process fold (serialization + TCP + parse
//! is real work, but not *that* much work), and answer headline queries
//! under 50 ms at p99.

use criterion::black_box;
use mvqoe_metrics::SharedRegistry;
use mvqoe_study::{simulate_range, FleetConfig};
use mvqoe_telemetryd::{run_fleet_loadgen, ServiceState, TelemetryServer};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;

fn cfg(users: u32) -> FleetConfig {
    // Same shape as BENCH_fleet: ~47 simulated seconds per user, so the
    // two artifacts are directly comparable.
    FleetConfig::scaled(users, 2064, 0.01, 0.001)
}

/// Ingest the whole fleet through the service over `conns` connections;
/// returns (wall seconds, reports ingested).
fn service_ingest_secs(c: &FleetConfig, shards: u32, conns: u32) -> (f64, u64) {
    let state = ServiceState::new(*c, shards, SharedRegistry::new());
    let server = TelemetryServer::start(state, 0).expect("bind loopback");
    let addr = server.addr();
    let start = Instant::now();
    let chunk = c.n_users / conns;
    let handles: Vec<_> = (0..conns)
        .map(|t| {
            let c = *c;
            let users = (t * chunk)..if t + 1 == conns { c.n_users } else { (t + 1) * chunk };
            std::thread::spawn(move || run_fleet_loadgen(addr, &c, users).expect("upload"))
        })
        .collect();
    let mut reports = 0;
    for h in handles {
        reports += h.join().expect("loadgen thread").accepted;
    }
    let secs = start.elapsed().as_secs_f64();
    black_box(server.shutdown());
    (secs, reports)
}

/// The same fleet folded directly in-process (no wire) — the overhead
/// baseline.
fn direct_secs(c: &FleetConfig) -> f64 {
    let start = Instant::now();
    black_box(simulate_range(c, 0..c.n_users));
    start.elapsed().as_secs_f64()
}

/// p99 latency (ms) of `n` sequential `/query/headline` requests against
/// a service holding a folded fleet.
fn headline_p99_ms(c: &FleetConfig, shards: u32, n: usize) -> f64 {
    let state = ServiceState::new(*c, shards, SharedRegistry::new());
    let server = TelemetryServer::start(state, 0).expect("bind loopback");
    let addr = server.addr();
    run_fleet_loadgen(addr, c, 0..c.n_users).expect("upload");
    let mut lat_ms: Vec<f64> = (0..n)
        .map(|_| {
            let start = Instant::now();
            let mut stream = TcpStream::connect(addr).expect("connect");
            write!(stream, "GET /query/headline HTTP/1.1\r\nHost: b\r\n\r\n").expect("write");
            let mut body = String::new();
            stream.read_to_string(&mut body).expect("read");
            assert!(body.contains("recruited"), "unexpected response: {body}");
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    server.shutdown();
    lat_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    lat_ms[(n * 99) / 100 - 1]
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let users: u32 = if test_mode { 200 } else { 2_000 };
    let queries: usize = if test_mode { 100 } else { 400 };
    let c = cfg(users);
    let shards = 32;
    let conns = 4;

    let (ingest_secs, reports) = service_ingest_secs(&c, shards, conns);
    let direct = direct_secs(&c);
    let users_per_sec = users as f64 / ingest_secs.max(1e-9);
    let reports_per_sec = reports as f64 / ingest_secs.max(1e-9);
    let overhead = ingest_secs / direct.max(1e-9);
    let p99_ms = headline_p99_ms(&c, shards, queries);

    println!(
        "service {users} users over {conns} connections: ingest {ingest_secs:.2} s \
         ({users_per_sec:.0} users/s, {reports_per_sec:.0} reports/s), direct fold \
         {direct:.2} s -> {overhead:.2}x wire overhead, headline p99 {p99_ms:.2} ms \
         ({queries} queries)"
    );

    if !test_mode {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
        let json = format!(
            "{{\n  \"bench\": \"telemetry_service_ingest_and_query\",\n  \
             \"users\": {users},\n  \
             \"shards\": {shards},\n  \
             \"loadgen_connections\": {conns},\n  \
             \"reports\": {reports},\n  \
             \"ingest_secs\": {ingest_secs:.3},\n  \
             \"ingest_users_per_sec\": {users_per_sec:.1},\n  \
             \"ingest_reports_per_sec\": {reports_per_sec:.1},\n  \
             \"direct_fold_secs\": {direct:.3},\n  \
             \"wire_over_direct\": {overhead:.3},\n  \
             \"headline_queries\": {queries},\n  \
             \"headline_p99_ms\": {p99_ms:.3}\n}}\n"
        );
        match std::fs::write(path, json) {
            Ok(()) => println!("[json] {path}"),
            Err(e) => eprintln!("[json] failed to write {path}: {e}"),
        }
    }

    // Regression guards (skipped in --test mode: debug codegen makes
    // wall-clock meaningless).
    if !test_mode {
        if users_per_sec < 500.0 {
            eprintln!(
                "REGRESSION: service ingest {users_per_sec:.0} users/s below the 500 users/s floor"
            );
            std::process::exit(1);
        }
        if overhead > 40.0 {
            eprintln!(
                "REGRESSION: service wire overhead {overhead:.2}x over the direct fold \
                 (limit 40x)"
            );
            std::process::exit(1);
        }
        if p99_ms > 50.0 {
            eprintln!("REGRESSION: headline query p99 {p99_ms:.2} ms above the 50 ms bound");
            std::process::exit(1);
        }
    }
}
