//! The streaming fleet engine vs the materialize-then-fold path.
//!
//! Simulates a 10k-user fleet (short observation windows — the equivalence
//! is hours-independent and the bench measures engine overhead, not
//! simulation depth) two ways: the sharded streaming path the experiments
//! use, and the old shape that materializes every `DeviceObservation`
//! before folding. Writes `BENCH_fleet.json` at the workspace root with
//! users/sec and peak RSS, and acts as its own regression guard: the
//! streaming path must not be more than 1.3× slower than materializing —
//! its whole point is bounding memory without giving up throughput — and
//! must sustain an absolute throughput floor of 75,000 users/s (the
//! committed baseline measures ~95,000 on an idle single-core box with
//! the SoA batch stepper and the arena-backed kernel, up from ~50,000
//! before the batching work; dropping below the floor means someone put
//! allocation or quadratic work back on the per-user path, or knocked
//! the quiescent fast path out of the batch loop).

use criterion::{black_box, Criterion};
use mvqoe_experiments::fleet_figs::{run_fleet_sharded, shard_count};
use mvqoe_experiments::Scale;
use mvqoe_study::{assemble_fleet, simulate_range, simulate_user, FleetConfig};
use std::time::Instant;

fn cfg(users: u32) -> FleetConfig {
    // ~47 simulated seconds per user: enough for pressure transitions to
    // land, small enough that a 10k-user fleet benches in seconds.
    FleetConfig::scaled(users, 2064, 0.01, 0.001)
}

/// Best of `runs` wall-clock measurements: scheduler noise only ever adds
/// time, so the minimum is the faithful engine cost.
fn best_of(runs: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..runs).map(|_| f()).fold(f64::MAX, f64::min)
}

/// The streaming engine: shards folded into bounded aggregates, merged.
fn streamed_secs(cfg: &FleetConfig) -> f64 {
    let scale = Scale::quick().jobs(1);
    best_of(2, || {
        let start = Instant::now();
        black_box(run_fleet_sharded(cfg, shard_count(cfg.n_users), &scale, None));
        start.elapsed().as_secs_f64()
    })
}

/// The pre-streaming shape: every observation materialized, then folded.
fn materialized_secs(cfg: &FleetConfig) -> f64 {
    best_of(2, || {
        let start = Instant::now();
        let users: Vec<_> = (0..cfg.n_users).map(|i| simulate_user(cfg, i)).collect();
        black_box(assemble_fleet(cfg, users));
        start.elapsed().as_secs_f64()
    })
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let users: u32 = if test_mode { 1_000 } else { 10_000 };
    let c = cfg(users);

    // Criterion-shaped reporting for the merge step itself.
    let mut crit = Criterion::default();
    let mut g = crit.benchmark_group("fleet");
    g.sample_size(10);
    let left = simulate_range(&c, 0..50);
    let right = simulate_range(&c, 50..100);
    g.bench_function("merge_two_50_user_shards", |b| {
        b.iter(|| {
            let mut m = left.clone();
            m.merge(black_box(&right));
            m
        })
    });
    g.finish();

    let streamed = streamed_secs(&c);
    let rss_after_streamed = mvqoe_core::peak_rss_mib().unwrap_or(0.0);
    let materialized = materialized_secs(&c);
    let rss_after_materialized = mvqoe_core::peak_rss_mib().unwrap_or(0.0);
    let ratio = streamed / materialized.max(1e-9);
    let users_per_sec = users as f64 / streamed.max(1e-9);

    println!(
        "fleet {users} users: streamed {streamed:.2} s ({users_per_sec:.0} users/s, \
         peak RSS {rss_after_streamed:.0} MiB), materialized {materialized:.2} s \
         (peak RSS {rss_after_materialized:.0} MiB) -> {ratio:.2}x"
    );

    if !test_mode {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
        let json = format!(
            "{{\n  \"bench\": \"fleet_streaming_vs_materialized\",\n  \
             \"users\": {users},\n  \
             \"shards\": {shards},\n  \
             \"streamed_secs\": {streamed:.3},\n  \
             \"streamed_users_per_sec\": {users_per_sec:.1},\n  \
             \"streamed_peak_rss_mib\": {rss_after_streamed:.1},\n  \
             \"materialized_secs\": {materialized:.3},\n  \
             \"materialized_peak_rss_mib\": {rss_after_materialized:.1},\n  \
             \"streamed_over_materialized\": {ratio:.3}\n}}\n",
            shards = shard_count(users),
        );
        match std::fs::write(path, json) {
            Ok(()) => println!("[json] {path}"),
            Err(e) => eprintln!("[json] failed to write {path}: {e}"),
        }
    }

    // Regression guards: streaming must stay within 1.3x of the old path,
    // and must clear the absolute users/s floor (skipped in --test mode,
    // where debug codegen makes wall-clock meaningless).
    if ratio > 1.3 {
        eprintln!(
            "REGRESSION: streaming fleet path {ratio:.2}x slower than materialize-then-fold \
             (limit 1.3x)"
        );
        std::process::exit(1);
    }
    if !test_mode && users_per_sec < 75_000.0 {
        eprintln!(
            "REGRESSION: streaming fleet throughput {users_per_sec:.0} users/s below the \
             75,000 users/s floor"
        );
        std::process::exit(1);
    }
}
