//! Telemetry overhead: how much does the metrics registry cost a session?
//!
//! Runs the same 12 s Nexus 5 Moderate-pressure session four ways — no
//! telemetry handle at all (`run_session`), a disabled registry (every
//! `inc`/`observe` hits the `enabled` guard and returns), a fully
//! enabled registry, and the causal attribution engine switched on — then
//! writes the measured overheads to `BENCH_telemetry.json` at the
//! workspace root. The disabled path is the one every golden-output run
//! takes, so its overhead must stay in the noise (< 2%); the same bound
//! guards attribution, whose fact harvesting and blame matching run on
//! every step of a pressured session. Attribution *disabled* is the
//! baseline itself (`SessionConfig::attribution` defaults to `false` and
//! every engine entry point is behind one branch), so its zero overhead
//! is enforced stronger than a timing bound: the committed golden
//! `results/*.json` must stay byte-identical.

use criterion::{black_box, Criterion};
use mvqoe_abr::FixedAbr;
use mvqoe_core::{run_session, run_session_with, PressureMode, SessionConfig};
use mvqoe_device::DeviceProfile;
use mvqoe_kernel::TrimLevel;
use mvqoe_metrics::Telemetry;
use mvqoe_video::{Fps, Genre, Manifest, Resolution};
use std::time::Instant;

fn cfg() -> SessionConfig {
    let mut cfg = SessionConfig::paper_default(
        DeviceProfile::nexus5(),
        PressureMode::Synthetic(TrimLevel::Moderate),
        42,
    );
    cfg.video_secs = 12.0;
    cfg
}

fn abr() -> FixedAbr {
    let m = Manifest::full_ladder(Genre::Travel, 12.0);
    FixedAbr::new(m.representation(Resolution::R480p, Fps::F60).unwrap())
}

#[derive(Clone, Copy)]
enum Mode {
    Off,
    Disabled,
    Enabled,
    Attribution,
}

fn run_once(mode: Mode) {
    let mut cfg = cfg();
    let mut abr = abr();
    match mode {
        Mode::Off => {
            black_box(run_session(&cfg, &mut abr));
        }
        Mode::Disabled => {
            let mut t = Telemetry::disabled();
            black_box(run_session_with(&cfg, &mut abr, Some(&mut t)));
        }
        Mode::Enabled => {
            let mut t = Telemetry::enabled();
            black_box(run_session_with(&cfg, &mut abr, Some(&mut t)));
        }
        Mode::Attribution => {
            cfg.attribution = true;
            black_box(run_session(&cfg, &mut abr));
        }
    }
}

/// Sessions per timing sample: one session is a few milliseconds of wall
/// clock, far too little to time individually, so each sample runs a batch.
const BATCH: usize = 25;

fn time_batch(mode: Mode) -> f64 {
    let start = Instant::now();
    for _ in 0..BATCH {
        run_once(mode);
    }
    start.elapsed().as_secs_f64()
}

/// Best-of-`samples` batch wall-clock for each mode, with the modes
/// interleaved round-robin so slow drift (frequency scaling, co-tenants)
/// hits all four equally. The minimum is the noise-robust statistic here:
/// interference only ever adds time.
fn time_modes(samples: usize) -> [f64; 4] {
    let mut best = [f64::INFINITY; 4];
    for _ in 0..samples {
        for (i, mode) in [Mode::Off, Mode::Disabled, Mode::Enabled, Mode::Attribution]
            .into_iter()
            .enumerate()
        {
            best[i] = best[i].min(time_batch(mode));
        }
    }
    best
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let samples = if test_mode { 1 } else { 15 };

    let mut c = Criterion::default();
    let mut g = c.benchmark_group("telemetry");
    g.sample_size(samples);
    g.bench_function("session_telemetry_off", |b| b.iter(|| run_once(Mode::Off)));
    g.bench_function("session_telemetry_disabled", |b| {
        b.iter(|| run_once(Mode::Disabled))
    });
    g.bench_function("session_telemetry_enabled", |b| {
        b.iter(|| run_once(Mode::Enabled))
    });
    g.bench_function("session_attribution_enabled", |b| {
        b.iter(|| run_once(Mode::Attribution))
    });
    g.finish();

    run_once(Mode::Off); // warm-up
    let [off_secs, disabled_secs, enabled_secs, attribution_secs] = time_modes(samples);
    let pct = |s: f64| (s / off_secs.max(1e-9) - 1.0) * 100.0;
    let disabled_overhead_pct = pct(disabled_secs);
    let enabled_overhead_pct = pct(enabled_secs);
    let attribution_overhead_pct = pct(attribution_secs);
    println!(
        "telemetry overhead vs off ({off_secs:.4} s): disabled {disabled_overhead_pct:+.2}%, \
         enabled {enabled_overhead_pct:+.2}%, attribution {attribution_overhead_pct:+.2}%"
    );

    if !test_mode {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
        let json = format!(
            "{{\n  \"bench\": \"session_telemetry_overhead\",\n  \"off_secs\": {off_secs:.4},\n  \
             \"disabled_secs\": {disabled_secs:.4},\n  \"enabled_secs\": {enabled_secs:.4},\n  \
             \"attribution_secs\": {attribution_secs:.4},\n  \
             \"disabled_overhead_pct\": {disabled_overhead_pct:.2},\n  \
             \"enabled_overhead_pct\": {enabled_overhead_pct:.2},\n  \
             \"attribution_overhead_pct\": {attribution_overhead_pct:.2}\n}}\n"
        );
        match std::fs::write(path, json) {
            Ok(()) => println!("[json] {path}"),
            Err(e) => eprintln!("[json] failed to write {path}: {e}"),
        }
    }

    // Regression guard: the attribution engine rides the hot per-step path
    // (fact harvesting, stall open/close, drop counting), so it must stay
    // inside the same < 2% budget the disabled registry holds. Skipped in
    // --test mode, where debug codegen makes wall-clock meaningless.
    if !test_mode && attribution_overhead_pct > 2.0 {
        eprintln!(
            "REGRESSION: attribution engine adds {attribution_overhead_pct:.2}% to a pressured \
             session (limit 2%)"
        );
        std::process::exit(1);
    }
}
