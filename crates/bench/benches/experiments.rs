//! One benchmark per paper artifact family: the cost of regenerating each
//! table/figure at reduced scale. These are end-to-end simulations, so
//! sample counts are kept small.

use criterion::{criterion_group, criterion_main, Criterion};
use mvqoe_abr::FixedAbr;
use mvqoe_core::{run_session, PressureMode, SessionConfig};
use mvqoe_device::DeviceProfile;
use mvqoe_kernel::TrimLevel;
use mvqoe_sim::{SimRng, SimTime};
use mvqoe_study::{run_survey, SurveyConfig};
use mvqoe_video::{Fps, Genre, Manifest, Resolution};
use mvqoe_workload::FleetUser;

fn short_session(
    device: DeviceProfile,
    pressure: PressureMode,
    res: Resolution,
    fps: Fps,
    record_trace: bool,
) -> f64 {
    let mut cfg = SessionConfig::paper_default(device, pressure, 42);
    cfg.video_secs = 12.0;
    cfg.record_trace = record_trace;
    let manifest = Manifest::full_ladder(Genre::Travel, cfg.video_secs);
    let rep = manifest.representation(res, fps).unwrap();
    let mut abr = FixedAbr::new(rep);
    run_session(&cfg, &mut abr).stats.drop_pct()
}

/// Fig. 9 / Table 2 family: one Nokia 1 cell (Normal).
fn bench_fig9_cell(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig9_nokia1_cell_normal", |b| {
        b.iter(|| {
            short_session(
                DeviceProfile::nokia1(),
                PressureMode::None,
                Resolution::R480p,
                Fps::F60,
                false,
            )
        })
    });
    // Fig. 11 / Table 3 family: one pressured Nexus 5 cell (includes the
    // MP-Simulator ramp).
    g.bench_function("fig11_nexus5_cell_moderate", |b| {
        b.iter(|| {
            short_session(
                DeviceProfile::nexus5(),
                PressureMode::Synthetic(TrimLevel::Moderate),
                Resolution::R720p,
                Fps::F60,
                false,
            )
        })
    });
    // Fig. 8 family: PSS measurement run.
    g.bench_function("fig8_pss_cell", |b| {
        b.iter(|| {
            short_session(
                DeviceProfile::nexus5(),
                PressureMode::None,
                Resolution::R1080p,
                Fps::F30,
                false,
            )
        })
    });
    // Tables 4/5 + Fig. 13 family: a trace-recorded session.
    g.bench_function("table4_traced_cell", |b| {
        b.iter(|| {
            short_session(
                DeviceProfile::nokia1(),
                PressureMode::None,
                Resolution::R480p,
                Fps::F60,
                true,
            )
        })
    });
    // Fig. 15 family: organic pressure session.
    g.bench_function("fig15_organic_cell", |b| {
        b.iter(|| {
            short_session(
                DeviceProfile::nokia1(),
                PressureMode::Organic(8),
                Resolution::R480p,
                Fps::F60,
                false,
            )
        })
    });
    g.finish();
}

/// Figs. 1–6 family: one hour of one fleet user's life at 1 Hz.
fn bench_fleet_hour(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig2-6_fleet_user_hour", |b| {
        let root = SimRng::new(7);
        b.iter(|| {
            let mut user = FleetUser::new(0, &root);
            let mut acc = 0.0;
            for s in 0..3600u64 {
                acc += user.step_1s(SimTime::from_secs(s)).utilization_pct;
            }
            acc
        })
    });
    g.finish();
}

/// Fig. 10 family: the 99-rater survey.
fn bench_fig10(c: &mut Criterion) {
    c.bench_function("figures/fig10_survey", |b| {
        b.iter(|| run_survey(&SurveyConfig::default()))
    });
}

criterion_group!(benches, bench_fig9_cell, bench_fleet_hour, bench_fig10);
criterion_main!(benches);
