//! The per-tick hot path: dense vs event-driven stepping cost.
//!
//! Measures ns per simulated 1 ms tick in four regimes — idle and loaded,
//! dense and skipped — plus the wall-clock for a full Fig. 8 grid with the
//! skip on and off, and writes `BENCH_hotpath.json` at the workspace root.
//! Acts as its own regression guard: on an idle machine the event-driven
//! engine must cover ticks at least 3× faster than dense stepping, the
//! whole Fig. 8 grid must regenerate at least 1.3× faster, and the loaded
//! dense tick — the path the skip can never rescue — must stay under
//! 63 ns (the pre-optimization baseline; the lazy scheduler accounting
//! and running-set tick hold it well below); if any guard trips the bench
//! exits non-zero.

use criterion::{black_box, Criterion};
use mvqoe_device::{DeviceProfile, Machine, StepOutputs};
use mvqoe_experiments::{fig8, Scale};
use mvqoe_kernel::{Pages, ProcKind};
use mvqoe_sched::SchedClass;
use mvqoe_sim::{SimDuration, SimRng};
use std::time::Instant;

/// A machine with recording off, as the bulk experiment grid runs it.
fn machine() -> Machine {
    let mut rng = SimRng::new(9);
    let mut m = Machine::new(DeviceProfile::nexus5(), &mut rng);
    m.sched.set_record_events(false);
    m
}

/// ns per simulated tick for an *idle* machine (only daemon cadences run).
fn idle_ns_per_tick(dense: bool, secs: u64) -> f64 {
    let mut m = machine();
    let warm = SimDuration::from_secs(1);
    let span = SimDuration::from_secs(secs);
    if dense {
        m.run_idle_dense(warm);
        let start = Instant::now();
        m.run_idle_dense(span);
        start.elapsed().as_nanos() as f64 / (secs * 1000) as f64
    } else {
        m.run_idle(warm);
        let start = Instant::now();
        m.run_idle(span);
        start.elapsed().as_nanos() as f64 / (secs * 1000) as f64
    }
}

/// ns per tick for a *loaded* machine (a thread with unbounded CPU work);
/// the skip can never engage, so this measures pure per-step overhead.
fn loaded_ns_per_tick(skip_enabled: bool, ticks: u64) -> f64 {
    let mut m = machine();
    let (pid, _) = m.add_process(
        "hog",
        ProcKind::Foreground,
        Pages::from_mib(64),
        Pages::from_mib(32),
        Pages::from_mib(16),
        0.45,
    );
    let tid = m.add_thread(pid, "hog", SchedClass::NORMAL);
    m.push_work(tid, 1e12, 0); // never runs out during the measurement
    let mut out = StepOutputs::default();
    for _ in 0..1000 {
        m.step_into(&mut out); // warm every buffer
    }
    let end = m.now() + SimDuration::from_millis(ticks);
    let start = Instant::now();
    while m.now() < end {
        if skip_enabled {
            m.advance_until(end); // provably refuses: the hog wants CPU
        }
        m.step_into(&mut out);
    }
    start.elapsed().as_nanos() as f64 / ticks as f64
}

/// Wall-clock seconds for the full Fig. 8 grid (quick scale, 1 rep).
fn fig8_secs(dense: bool) -> f64 {
    let mut scale = Scale::quick();
    scale.runs = 1;
    mvqoe_core::set_dense_ticks(dense);
    let start = Instant::now();
    black_box(fig8::run(&scale));
    let secs = start.elapsed().as_secs_f64();
    mvqoe_core::set_dense_ticks(false);
    secs
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let idle_secs = if test_mode { 2 } else { 20 };
    let loaded_ticks = if test_mode { 2_000 } else { 50_000 };

    // Criterion-shaped reporting for the per-step paths.
    let mut c = Criterion::default();
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(10);
    g.bench_function("idle_step_dense", |b| {
        let mut m = machine();
        m.run_idle_dense(SimDuration::from_secs(1));
        b.iter(|| m.run_idle_dense(SimDuration::from_millis(100)))
    });
    g.bench_function("idle_step_skipped", |b| {
        let mut m = machine();
        m.run_idle(SimDuration::from_secs(1));
        b.iter(|| m.run_idle(SimDuration::from_millis(100)))
    });
    g.finish();

    let dense_idle = idle_ns_per_tick(true, idle_secs);
    let skip_idle = idle_ns_per_tick(false, idle_secs);
    let dense_loaded = loaded_ns_per_tick(false, loaded_ticks);
    let skip_loaded = loaded_ns_per_tick(true, loaded_ticks);
    let idle_speedup = dense_idle / skip_idle.max(1e-9);
    let loaded_overhead = skip_loaded / dense_loaded.max(1e-9);

    let fig8_dense = fig8_secs(true);
    let fig8_skip = fig8_secs(false);
    let fig8_speedup = fig8_dense / fig8_skip.max(1e-9);

    println!("idle:   dense {dense_idle:.0} ns/tick, skipped {skip_idle:.0} ns/tick -> {idle_speedup:.1}x");
    println!("loaded: dense {dense_loaded:.0} ns/tick, skipped {skip_loaded:.0} ns/tick -> {loaded_overhead:.2}x overhead");
    println!("fig8:   dense {fig8_dense:.2} s, skipped {fig8_skip:.2} s -> {fig8_speedup:.2}x");

    if !test_mode {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
        let json = format!(
            "{{\n  \"bench\": \"hotpath_dense_vs_skipped\",\n  \
             \"idle_dense_ns_per_tick\": {dense_idle:.1},\n  \
             \"idle_skipped_ns_per_tick\": {skip_idle:.1},\n  \
             \"idle_speedup\": {idle_speedup:.2},\n  \
             \"loaded_dense_ns_per_tick\": {dense_loaded:.1},\n  \
             \"loaded_skipped_ns_per_tick\": {skip_loaded:.1},\n  \
             \"loaded_overhead\": {loaded_overhead:.3},\n  \
             \"fig8_dense_secs\": {fig8_dense:.3},\n  \
             \"fig8_skipped_secs\": {fig8_skip:.3},\n  \
             \"fig8_speedup\": {fig8_speedup:.3}\n}}\n"
        );
        match std::fs::write(path, json) {
            Ok(()) => println!("[json] {path}"),
            Err(e) => eprintln!("[json] failed to write {path}: {e}"),
        }
    }

    // Regression guards: the whole point of the event-driven engine.
    let mut failed = false;
    if idle_speedup < 3.0 {
        eprintln!("REGRESSION: idle skip speedup {idle_speedup:.2}x < 3x");
        failed = true;
    }
    if !test_mode && fig8_speedup < 1.3 {
        eprintln!("REGRESSION: fig8 grid skip speedup {fig8_speedup:.2}x < 1.3x");
        failed = true;
    }
    if !test_mode && dense_loaded >= 63.0 {
        eprintln!(
            "REGRESSION: loaded dense tick {dense_loaded:.1} ns at or above the 63 ns \
             pre-optimization baseline"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
