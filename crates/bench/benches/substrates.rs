//! Microbenchmarks of each substrate.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mvqoe_abr::{Abr, AbrContext, Bola, BufferBased, MemoryAware};
use mvqoe_device::{DeviceProfile, Machine};
use mvqoe_kernel::{MemConfig, MemoryManager, Pages, ProcKind, TrimLevel};
use mvqoe_sched::{SchedClass, Scheduler};
use mvqoe_sim::{SimDuration, SimRng, SimTime};
use mvqoe_storage::{Disk, DiskParams};
use mvqoe_study::{run_survey, SurveyConfig};
use mvqoe_video::{Fps, Genre, Manifest, Resolution};

fn pressured_manager() -> MemoryManager {
    let mut mm = MemoryManager::new(MemConfig::for_ram_mib(1024));
    mm.spawn_sized(
        SimTime::ZERO,
        "system",
        ProcKind::System,
        Pages::from_mib(150),
        Pages::from_mib(100),
        Pages::from_mib(80),
        0.3,
    );
    for i in 0..10 {
        mm.spawn_sized(
            SimTime::ZERO,
            format!("bg{i}"),
            ProcKind::Cached,
            Pages::from_mib(35),
            Pages::from_mib(25),
            Pages::from_mib(18),
            0.5,
        );
    }
    let (hog, _) = mm.spawn_sized(
        SimTime::ZERO,
        "hog",
        ProcKind::Foreground,
        Pages::from_mib(250),
        Pages::from_mib(60),
        Pages::from_mib(40),
        0.3,
    );
    mm.set_floor(hog, Pages::from_mib(120), Pages::from_mib(20));
    mm
}

fn bench_kernel(c: &mut Criterion) {
    c.bench_function("kernel/kswapd_batch", |b| {
        b.iter_batched(
            pressured_manager,
            |mut mm| {
                // Force shortage, then run one batch.
                let hog = mm.procs().last().unwrap().id;
                mm.alloc_anon(SimTime::from_millis(1), hog, Pages::from_mib(200));
                mm.kswapd_batch(SimTime::from_millis(2))
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("kernel/alloc_free_cycle", |b| {
        let mut mm = pressured_manager();
        let pid = mm.procs().last().unwrap().id;
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let out = mm.alloc_anon(SimTime::from_millis(t), pid, Pages::from_mib(2));
            mm.free_anon(SimTime::from_millis(t), pid, out.granted);
        })
    });

    c.bench_function("kernel/lmkd_victim_selection", |b| {
        let mut mm = pressured_manager();
        // Drive pressure so a victim band is active.
        let hog = mm.procs().last().unwrap().id;
        for i in 0..50 {
            mm.alloc_anon(SimTime::from_millis(i), hog, Pages::from_mib(8));
            mm.kswapd_batch(SimTime::from_millis(i));
        }
        b.iter(|| mm.lmkd_victim_ungated(SimTime::from_millis(60)))
    });
}

fn bench_sched(c: &mut Criterion) {
    c.bench_function("sched/tick_8_threads_4_cores", |b| {
        let mut s = Scheduler::new();
        s.set_record_events(false);
        for _ in 0..4 {
            s.add_core(1.0);
        }
        let tids: Vec<_> = (0..8)
            .map(|i| s.spawn(format!("t{i}"), SchedClass::NORMAL))
            .collect();
        for &t in &tids {
            s.push_work(t, 1e12, 0);
        }
        b.iter(|| s.tick(SimDuration::from_millis(1)))
    });
}

fn bench_storage(c: &mut Criterion) {
    c.bench_function("storage/submit_dispatch_poll", |b| {
        let mut disk = Disk::new(DiskParams::default());
        let mut t = 0u64;
        b.iter(|| {
            t += 1000;
            let now = SimTime::from_micros(t);
            disk.submit_read(now, 16, Some(1));
            disk.dispatch_next(now);
            disk.poll(SimTime::from_micros(t + 900))
        })
    });
}

fn bench_machine(c: &mut Criterion) {
    c.bench_function("device/machine_step_idle", |b| {
        let mut rng = SimRng::new(1);
        let mut m = Machine::new(DeviceProfile::nexus5(), &mut rng);
        m.sched.set_record_events(false);
        b.iter(|| m.step())
    });
}

fn bench_abr(c: &mut Criterion) {
    let manifest = Manifest::full_ladder(Genre::Travel, 120.0);
    let ctx = AbrContext {
        manifest: &manifest,
        buffer_seconds: 32.0,
        buffer_capacity: 60.0,
        throughput_mbps: Some(40.0),
        trim_level: TrimLevel::Moderate,
        recent_drop_pct: 12.0,
        last: None,
        screen_cap: Resolution::R1080p,
        next_segment: 8,
        last_download_secs: Some(0.8),
    };
    c.bench_function("abr/bola_decision", |b| {
        let mut abr = Bola::new(Fps::F60);
        b.iter(|| abr.choose(&ctx))
    });
    c.bench_function("abr/memory_aware_decision", |b| {
        let mut abr = MemoryAware::new(BufferBased::new(Fps::F60), Fps::F60);
        b.iter(|| abr.choose(&ctx))
    });
}

fn bench_survey(c: &mut Criterion) {
    c.bench_function("study/dmos_survey_99_raters", |b| {
        b.iter(|| run_survey(&SurveyConfig::default()))
    });
}

criterion_group!(
    benches,
    bench_kernel,
    bench_sched,
    bench_storage,
    bench_machine,
    bench_abr,
    bench_survey
);
criterion_main!(benches);
