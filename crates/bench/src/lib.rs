//! Benchmark-only crate; see `benches/`.
//!
//! * `substrates` — microbenchmarks of each subsystem (reclaim batches,
//!   scheduler ticks, disk queueing, ABR decisions, DMOS survey).
//! * `experiments` — the cost of regenerating each paper artifact: one
//!   benchmark per table/figure family, so a slowdown in any reproduction
//!   path is caught.
