//! Scheduler event records — the simulation's analog of a Perfetto
//! `sched_switch`/`sched_wakeup` trace.
//!
//! The device machine drains these each tick and forwards them to the
//! tracer (`mvqoe-trace`), which answers the paper's §5 questions: top
//! running threads, preemption counts, post-preemption run lengths, and
//! victim wait times (Table 5).

use crate::thread::{ThreadId, ThreadState};
use mvqoe_sim::SimTime;
use serde::{Deserialize, Serialize};

/// A completed work item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Completion {
    /// The thread that finished the work.
    pub thread: ThreadId,
    /// The tag supplied when the work was pushed.
    pub tag: u64,
    /// Completion time.
    pub at: SimTime,
}

/// One preemption: `victim` was running and was displaced by `preempter`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreemptionRecord {
    /// When it happened.
    pub at: SimTime,
    /// The displaced thread.
    pub victim: ThreadId,
    /// The thread that took the CPU.
    pub preempter: ThreadId,
    /// The core involved.
    pub core: usize,
}

/// Kinds of scheduler events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedEventKind {
    /// A thread started running on a core.
    SwitchIn {
        /// Core it runs on.
        core: usize,
    },
    /// A thread stopped running on a core, entering `to_state`.
    SwitchOut {
        /// Core it left.
        core: usize,
        /// The state it entered.
        to_state: ThreadState,
    },
    /// A sleeping/blocked thread became runnable.
    Wakeup,
    /// A thread blocked on I/O.
    BlockIo,
    /// A thread went to sleep (no work left).
    Sleep,
}

/// A timestamped scheduler event for one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedEvent {
    /// When it happened.
    pub at: SimTime,
    /// The thread it concerns.
    pub thread: ThreadId,
    /// What happened.
    pub kind: SchedEventKind,
}
