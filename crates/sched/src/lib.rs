//! A multi-core CPU scheduler model.
//!
//! §5 of *"Coal Not Diamonds"* attributes the frame drops under memory
//! pressure to *scheduling interference*: `mmcqd` (the eMMC I/O daemon) has
//! a strictly higher scheduling priority than foreground threads and
//! preempts them, while `kswapd` shares the fair class with foreground
//! threads and simply out-competes them for CPU time. This crate models
//! exactly those relationships:
//!
//! * two scheduling classes — [`SchedClass::RealTime`] always beats
//!   [`SchedClass::Fair`]; fair threads are picked by minimum virtual
//!   runtime weighted by their share (a compact CFS);
//! * per-thread state machine — Running / Runnable / Runnable-**Preempted**
//!   / Sleeping / I/O-wait — with cumulative time accounting per state,
//!   which is precisely what the paper's Table 4 and Fig. 13 report;
//! * preemption records (who kicked whom off a core, and when the victim
//!   next ran) feeding Table 5's `mmcqd` statistics;
//! * core-migration counting, behind the paper's §7 observation that
//!   `kswapd` hops cores.
//!
//! The scheduler is driven in fixed ticks by the device machine. Work is
//! expressed in µs at a reference core speed; heterogeneous cores (e.g. the
//! Nexus 6P's big.LITTLE pairing) scale execution by their speed factor.

pub mod events;
pub mod scheduler;
pub mod thread;

pub use events::{Completion, PreemptionRecord, SchedEvent, SchedEventKind};
pub use scheduler::Scheduler;
pub use thread::{SchedClass, StateTimes, Thread, ThreadId, ThreadState};
