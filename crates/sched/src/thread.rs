//! Threads, scheduling classes and state-time accounting.

use mvqoe_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Identifier for a simulated thread.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ThreadId(pub u32);

/// Scheduling class. Real-time always preempts fair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedClass {
    /// Fixed-priority real-time (Linux `SCHED_FIFO`-like). Higher `prio`
    /// wins. `mmcqd` lives here — the paper notes it is "strictly
    /// prioritized over foreground processes".
    RealTime {
        /// RT priority; higher wins.
        prio: u8,
    },
    /// CFS-like fair class. `weight` is the share (1024 = nice 0). Both
    /// foreground app threads and `kswapd` are fair — the paper measures
    /// 77.9% of Firefox threads at exactly kswapd's priority.
    Fair {
        /// Load weight; 1024 corresponds to nice 0.
        weight: u32,
    },
}

impl SchedClass {
    /// Fair with the default weight.
    pub const NORMAL: SchedClass = SchedClass::Fair { weight: 1024 };

    /// True for real-time threads.
    pub fn is_rt(self) -> bool {
        matches!(self, SchedClass::RealTime { .. })
    }
}

/// Thread execution state, matching the states the paper's Table 4 reports
/// from Perfetto traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreadState {
    /// On a CPU core right now.
    Running,
    /// Ready to run, waiting for a core (woke up, not yet scheduled).
    Runnable,
    /// Ready to run after having been *kicked off* a core by a higher-
    /// priority thread — the paper's "Runnable (Preempted)".
    RunnablePreempted,
    /// Blocked with nothing to do.
    Sleeping,
    /// Blocked on disk I/O (uninterruptible sleep).
    IoWait,
}

impl ThreadState {
    /// All states, for iteration in reports.
    pub const ALL: [ThreadState; 5] = [
        ThreadState::Running,
        ThreadState::Runnable,
        ThreadState::RunnablePreempted,
        ThreadState::Sleeping,
        ThreadState::IoWait,
    ];

    /// True if the thread may be placed on a core.
    pub fn is_ready(self) -> bool {
        matches!(
            self,
            ThreadState::Runnable | ThreadState::RunnablePreempted | ThreadState::Running
        )
    }
}

impl std::fmt::Display for ThreadState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ThreadState::Running => "Running",
            ThreadState::Runnable => "Runnable",
            ThreadState::RunnablePreempted => "Runnable (Preempted)",
            ThreadState::Sleeping => "Sleeping",
            ThreadState::IoWait => "I/O wait",
        };
        f.write_str(s)
    }
}

/// Cumulative time a thread spent in each state.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct StateTimes {
    /// Time on-CPU.
    pub running: SimDuration,
    /// Time ready and waiting (not preempted).
    pub runnable: SimDuration,
    /// Time ready and waiting after a preemption.
    pub preempted: SimDuration,
    /// Time blocked idle.
    pub sleeping: SimDuration,
    /// Time blocked on disk I/O.
    pub io_wait: SimDuration,
}

impl StateTimes {
    /// Add `dt` to the bucket for `state`.
    pub fn add(&mut self, state: ThreadState, dt: SimDuration) {
        match state {
            ThreadState::Running => self.running += dt,
            ThreadState::Runnable => self.runnable += dt,
            ThreadState::RunnablePreempted => self.preempted += dt,
            ThreadState::Sleeping => self.sleeping += dt,
            ThreadState::IoWait => self.io_wait += dt,
        }
    }

    /// Subtract `dt` from the bucket for `state` (the inverse of
    /// [`StateTimes::add`], used when deserializing the scheduler's lazy
    /// accounting). Panics on underflow, which would indicate corrupt data.
    pub fn sub(&mut self, state: ThreadState, dt: SimDuration) {
        match state {
            ThreadState::Running => self.running -= dt,
            ThreadState::Runnable => self.runnable -= dt,
            ThreadState::RunnablePreempted => self.preempted -= dt,
            ThreadState::Sleeping => self.sleeping -= dt,
            ThreadState::IoWait => self.io_wait -= dt,
        }
    }

    /// Time for one state.
    pub fn get(&self, state: ThreadState) -> SimDuration {
        match state {
            ThreadState::Running => self.running,
            ThreadState::Runnable => self.runnable,
            ThreadState::RunnablePreempted => self.preempted,
            ThreadState::Sleeping => self.sleeping,
            ThreadState::IoWait => self.io_wait,
        }
    }

    /// Sum over all states (should equal thread lifetime).
    pub fn total(&self) -> SimDuration {
        self.running + self.runnable + self.preempted + self.sleeping + self.io_wait
    }
}

/// One unit of CPU work queued on a thread.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WorkItem {
    /// Remaining work, µs at reference core speed.
    pub remaining_us: f64,
    /// Caller-defined tag returned on completion.
    pub tag: u64,
}

/// A simulated thread.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Thread {
    /// Stable identifier.
    pub id: ThreadId,
    /// Display name (matches the paper's thread names where relevant).
    pub name: String,
    /// Owning process identifier in the memory model, if any.
    pub proc_tag: Option<u32>,
    /// Scheduling class.
    pub class: SchedClass,
    /// Current state.
    pub state: ThreadState,
    /// FIFO of pending compute.
    pub work: VecDeque<WorkItem>,
    /// CFS virtual runtime (weighted, µs-scaled).
    pub vruntime: f64,
    /// Per-state times accumulated *up to `state_since`*: the span the
    /// thread has spent in its current state since then is implicit (lazy
    /// accounting — charged only when the state changes). Read through
    /// [`crate::Scheduler::times_of`], which adds the in-progress span.
    pub(crate) times: StateTimes,
    /// Core the thread is currently running on.
    pub on_core: Option<usize>,
    /// Core the thread last ran on (for affinity + migration counting).
    pub last_core: Option<usize>,
    /// Number of times the thread resumed on a different core.
    pub migrations: u64,
    /// When the thread last entered its current state.
    pub state_since: SimTime,
    /// True once the thread is terminated (process killed).
    pub dead: bool,
}

impl Thread {
    /// Create a sleeping thread.
    pub fn new(id: ThreadId, name: impl Into<String>, class: SchedClass) -> Thread {
        Thread {
            id,
            name: name.into(),
            proc_tag: None,
            class,
            state: ThreadState::Sleeping,
            work: VecDeque::new(),
            vruntime: 0.0,
            times: StateTimes::default(),
            on_core: None,
            last_core: None,
            migrations: 0,
            state_since: SimTime::ZERO,
            dead: false,
        }
    }

    /// Total work pending, µs at reference speed.
    pub fn pending_us(&self) -> f64 {
        self.work.iter().map(|w| w.remaining_us).sum()
    }

    /// True if the thread has work and is not blocked or dead.
    pub fn wants_cpu(&self) -> bool {
        !self.dead && !self.work.is_empty() && self.state.is_ready()
    }

    /// CFS weight (RT threads get an effectively infinite share).
    pub fn weight(&self) -> f64 {
        match self.class {
            SchedClass::RealTime { .. } => 1024.0,
            SchedClass::Fair { weight } => weight as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_times_accumulate_and_total() {
        let mut st = StateTimes::default();
        st.add(ThreadState::Running, SimDuration::from_millis(10));
        st.add(ThreadState::Running, SimDuration::from_millis(5));
        st.add(ThreadState::RunnablePreempted, SimDuration::from_millis(3));
        st.add(ThreadState::IoWait, SimDuration::from_millis(2));
        assert_eq!(st.get(ThreadState::Running), SimDuration::from_millis(15));
        assert_eq!(
            st.get(ThreadState::RunnablePreempted),
            SimDuration::from_millis(3)
        );
        assert_eq!(st.total(), SimDuration::from_millis(20));
    }

    #[test]
    fn readiness_by_state() {
        assert!(ThreadState::Running.is_ready());
        assert!(ThreadState::Runnable.is_ready());
        assert!(ThreadState::RunnablePreempted.is_ready());
        assert!(!ThreadState::Sleeping.is_ready());
        assert!(!ThreadState::IoWait.is_ready());
    }

    #[test]
    fn new_thread_sleeps_without_work() {
        let th = Thread::new(ThreadId(0), "decoder", SchedClass::NORMAL);
        assert_eq!(th.state, ThreadState::Sleeping);
        assert!(!th.wants_cpu());
        assert_eq!(th.pending_us(), 0.0);
    }

    #[test]
    fn rt_class_detection() {
        assert!(SchedClass::RealTime { prio: 50 }.is_rt());
        assert!(!SchedClass::NORMAL.is_rt());
    }

    #[test]
    fn display_matches_paper_terms() {
        assert_eq!(
            ThreadState::RunnablePreempted.to_string(),
            "Runnable (Preempted)"
        );
    }
}
