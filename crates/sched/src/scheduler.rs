//! The tick-driven multi-core scheduler.
//!
//! Each tick (the device machine uses 1 ms), the scheduler picks the best
//! `n_cores` ready threads — all real-time threads by priority first, then
//! fair threads by minimum virtual runtime — executes work on the running
//! threads, and records preemptions, completions and switch events.
//! State time is accounted *lazily*: a thread's per-state totals are only
//! charged when its state changes (or when read through
//! [`Scheduler::times_of`]), so a tick's cost scales with the number of
//! running threads, not the number of existing threads.

use crate::events::{Completion, PreemptionRecord, SchedEvent, SchedEventKind};
use crate::thread::{SchedClass, StateTimes, Thread, ThreadId, ThreadState, WorkItem};
use mvqoe_metrics::selfprof;
use mvqoe_sim::{SimDuration, SimTime};
use serde::ser::Value;
use serde::{Deserialize, Serialize};

/// Charge the span the thread has spent in its current state (lazy
/// accounting) before a state transition. Dead threads' times are frozen.
#[inline]
fn flush_state_time(th: &mut Thread, now: SimTime) {
    if !th.dead {
        let span = now.saturating_since(th.state_since);
        if span > SimDuration::ZERO {
            th.times.add(th.state, span);
        }
    }
}

/// One CPU core.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Core {
    /// Speed factor relative to the reference core (Nexus 5 @ 2.33 GHz =
    /// 1.0; the Nokia 1's 1.1 GHz cores ≈ 0.47).
    pub speed: f64,
    /// Thread currently placed on this core.
    pub running: Option<ThreadId>,
}

/// The scheduler for one device.
#[derive(Debug)]
pub struct Scheduler {
    cores: Vec<Core>,
    threads: Vec<Thread>,
    now: SimTime,
    completions: Vec<Completion>,
    preemptions: Vec<PreemptionRecord>,
    events: Vec<SchedEvent>,
    min_vruntime: f64,
    record_events: bool,
    ctx_switches: u64,
    // Reusable per-tick scratch (the select hot path must not allocate).
    scratch_ready: Vec<usize>,
    /// Generation marker per thread: `sel_marks[i] == sel_gen` ⇔ thread `i`
    /// was selected this tick. Replaces a per-tick `selected` Vec and its
    /// O(n²) `contains` scans.
    sel_marks: Vec<u64>,
    sel_gen: u64,
    /// `displaced_on_core[c]` is the thread displaced from core `c` this
    /// tick (if any), consumed by [`Scheduler::place`].
    displaced_on_core: Vec<Option<ThreadId>>,
    /// Running threads this tick (core occupants in thread-id order).
    scratch_running: Vec<usize>,
    /// Count of threads for which `wants_cpu()` holds, maintained across
    /// every state mutation. Powers the O(1) [`Scheduler::is_idle`] and the
    /// select fast path (threads on cores always want the CPU, so
    /// `n_want == occupied cores` means selection cannot change placement).
    n_want: u32,
}

impl Scheduler {
    /// Create a scheduler with no cores or threads.
    pub fn new() -> Scheduler {
        Scheduler {
            cores: Vec::new(),
            threads: Vec::new(),
            now: SimTime::ZERO,
            completions: Vec::new(),
            preemptions: Vec::new(),
            events: Vec::new(),
            min_vruntime: 0.0,
            record_events: true,
            ctx_switches: 0,
            scratch_ready: Vec::new(),
            sel_marks: Vec::new(),
            sel_gen: 0,
            displaced_on_core: Vec::new(),
            scratch_running: Vec::new(),
            n_want: 0,
        }
    }

    /// Total context switches so far (every placement of a thread onto a
    /// core it was not already running on).
    pub fn ctx_switches(&self) -> u64 {
        self.ctx_switches
    }

    /// Disable per-switch event recording (keeps long runs lean; state-time
    /// accounting and preemption records are unaffected).
    pub fn set_record_events(&mut self, on: bool) {
        self.record_events = on;
    }

    /// Add a core with the given speed factor. Returns its index.
    pub fn add_core(&mut self, speed: f64) -> usize {
        assert!(speed > 0.0);
        self.cores.push(Core {
            speed,
            running: None,
        });
        self.cores.len() - 1
    }

    /// Spawn a thread (initially sleeping).
    pub fn spawn(&mut self, name: impl Into<String>, class: SchedClass) -> ThreadId {
        let id = ThreadId(self.threads.len() as u32);
        let mut th = Thread::new(id, name, class);
        th.state_since = self.now;
        self.threads.push(th);
        id
    }

    /// Tag a thread with its owning memory-model process.
    pub fn set_proc_tag(&mut self, tid: ThreadId, tag: u32) {
        self.threads[tid.0 as usize].proc_tag = tag.into();
    }

    /// Queue `us` µs (at reference speed) of work on a thread, waking it if
    /// it was sleeping. The `tag` comes back in the [`Completion`].
    pub fn push_work(&mut self, tid: ThreadId, us: f64, tag: u64) {
        debug_assert!(us >= 0.0);
        let min_vr = self.min_vruntime;
        let now = self.now;
        let record = self.record_events;
        let th = &mut self.threads[tid.0 as usize];
        if th.dead {
            return;
        }
        let wanted = th.wants_cpu();
        th.work.push_back(WorkItem {
            remaining_us: us,
            tag,
        });
        if th.state == ThreadState::Sleeping {
            flush_state_time(th, now);
            th.state = ThreadState::Runnable;
            th.state_since = now;
            // CFS wakeup placement: don't let long sleepers hoard vruntime
            // credit and starve everyone else.
            th.vruntime = th.vruntime.max(min_vr);
            if record {
                self.events.push(SchedEvent {
                    at: now,
                    thread: tid,
                    kind: SchedEventKind::Wakeup,
                });
            }
        }
        let wants = self.threads[tid.0 as usize].wants_cpu();
        self.adjust_want(wanted, wants);
    }

    /// Update the `wants_cpu` population count across a mutation.
    #[inline]
    fn adjust_want(&mut self, before: bool, after: bool) {
        match (before, after) {
            (false, true) => self.n_want += 1,
            (true, false) => self.n_want -= 1,
            _ => {}
        }
    }

    /// Block a thread on disk I/O. It leaves its core immediately and will
    /// not run until [`Scheduler::unblock_io`].
    pub fn block_io(&mut self, tid: ThreadId) {
        let now = self.now;
        let record = self.record_events;
        let core_idx = self.threads[tid.0 as usize].on_core;
        if let Some(c) = core_idx {
            self.cores[c].running = None;
        }
        let th = &mut self.threads[tid.0 as usize];
        if th.dead {
            return;
        }
        let wanted = th.wants_cpu();
        if record && th.on_core.is_some() {
            self.events.push(SchedEvent {
                at: now,
                thread: tid,
                kind: SchedEventKind::SwitchOut {
                    core: core_idx.unwrap(),
                    to_state: ThreadState::IoWait,
                },
            });
        }
        let th = &mut self.threads[tid.0 as usize];
        flush_state_time(th, now);
        th.on_core = None;
        th.state = ThreadState::IoWait;
        th.state_since = now;
        // IoWait is never ready, so the thread no longer wants the CPU.
        self.adjust_want(wanted, false);
        if record {
            self.events.push(SchedEvent {
                at: now,
                thread: tid,
                kind: SchedEventKind::BlockIo,
            });
        }
    }

    /// Complete a thread's I/O: it becomes runnable (or sleeps if it has no
    /// work queued).
    pub fn unblock_io(&mut self, tid: ThreadId) {
        let now = self.now;
        let min_vr = self.min_vruntime;
        let record = self.record_events;
        let th = &mut self.threads[tid.0 as usize];
        if th.dead || th.state != ThreadState::IoWait {
            return;
        }
        flush_state_time(th, now);
        th.state = if th.work.is_empty() {
            ThreadState::Sleeping
        } else {
            ThreadState::Runnable
        };
        th.state_since = now;
        th.vruntime = th.vruntime.max(min_vr);
        let wants = th.wants_cpu();
        // Coming out of IoWait the thread could not have wanted the CPU.
        self.adjust_want(false, wants);
        if record {
            self.events.push(SchedEvent {
                at: now,
                thread: tid,
                kind: SchedEventKind::Wakeup,
            });
        }
    }

    /// Terminate a thread (its process died). Pending work is dropped.
    pub fn kill_thread(&mut self, tid: ThreadId) {
        let now = self.now;
        if let Some(c) = self.threads[tid.0 as usize].on_core {
            self.cores[c].running = None;
        }
        let th = &mut self.threads[tid.0 as usize];
        let wanted = th.wants_cpu();
        // Flush before marking dead: `flush_state_time` freezes the times of
        // dead threads, so this is the last charge they ever receive.
        flush_state_time(th, now);
        th.dead = true;
        th.on_core = None;
        th.work.clear();
        th.state = ThreadState::Sleeping;
        th.state_since = now;
        self.adjust_want(wanted, false);
    }

    /// Change a thread's scheduling class.
    pub fn set_class(&mut self, tid: ThreadId, class: SchedClass) {
        self.threads[tid.0 as usize].class = class;
    }

    /// Advance the simulation by `dt`: select threads and execute work.
    /// State time is accounted lazily — charged at each state transition —
    /// so the tick only touches the threads actually on cores.
    pub fn tick(&mut self, dt: SimDuration) {
        let t0 = self.now;
        let t1 = t0 + dt;

        self.select(t0);

        // Execute work on the core occupants only. Iterating in thread-id
        // order matches the historical full-scan order, so completions
        // within one tick come out in the same sequence.
        let mut running = std::mem::take(&mut self.scratch_running);
        running.clear();
        running.extend(
            self.cores
                .iter()
                .filter_map(|c| c.running.map(|t| t.0 as usize)),
        );
        running.sort_unstable();
        for idx in 0..running.len() {
            let i = running[idx];
            let core = self.threads[i].on_core.expect("running thread has a core");
            let speed = self.cores[core].speed;
            let mut budget_us = dt.as_micros() as f64 * speed;
            let weight = self.threads[i].weight();
            self.threads[i].vruntime += dt.as_micros() as f64 * 1024.0 / weight;
            while budget_us > 0.0 {
                let Some(front) = self.threads[i].work.front_mut() else {
                    break;
                };
                if front.remaining_us <= budget_us {
                    budget_us -= front.remaining_us;
                    let tag = front.tag;
                    self.threads[i].work.pop_front();
                    self.completions.push(Completion {
                        thread: self.threads[i].id,
                        tag,
                        at: t1,
                    });
                } else {
                    front.remaining_us -= budget_us;
                    budget_us = 0.0;
                }
            }
            if self.threads[i].work.is_empty() {
                // Out of work: leave the core and sleep. The thread ran
                // through the whole tick, so its Running span is charged up
                // to `t1`. It wanted the CPU at tick start and no longer
                // does, hence the `n_want` decrement.
                let tid = self.threads[i].id;
                self.cores[core].running = None;
                let th = &mut self.threads[i];
                flush_state_time(th, t1);
                th.on_core = None;
                th.state = ThreadState::Sleeping;
                th.state_since = t1;
                self.n_want -= 1;
                if self.record_events {
                    self.events.push(SchedEvent {
                        at: t1,
                        thread: tid,
                        kind: SchedEventKind::SwitchOut {
                            core,
                            to_state: ThreadState::Sleeping,
                        },
                    });
                    self.events.push(SchedEvent {
                        at: t1,
                        thread: tid,
                        kind: SchedEventKind::Sleep,
                    });
                }
            }
        }
        self.scratch_running = running;

        self.now = t1;
    }

    /// Pick the best `n_cores` ready threads and place them, recording
    /// preemptions. Allocation-free: works off reusable scratch buffers.
    fn select(&mut self, now: SimTime) {
        // Fast path: every thread that wants the CPU is already on a core.
        // Threads on cores always want the CPU, so equal counts mean the
        // ready set is exactly the running set — a full selection would
        // re-pick the same threads, move nobody, and only refresh
        // `min_vruntime`. The fold below computes the same minimum the full
        // path would (f64 min over the same set is order-insensitive; our
        // vruntimes are never NaN or -0.0).
        let mut occupied = 0u32;
        let mut min_vr = f64::INFINITY;
        for c in &self.cores {
            if let Some(tid) = c.running {
                occupied += 1;
                min_vr = min_vr.min(self.threads[tid.0 as usize].vruntime);
            }
        }
        if self.n_want == occupied {
            if occupied > 0 {
                self.min_vruntime = self.min_vruntime.max(min_vr);
            }
            return;
        }
        let _prof = selfprof::span(selfprof::Phase::SchedSelectSlow);

        // Order: RT by priority (desc), then fair by vruntime (asc). Ties by
        // id for determinism.
        let mut ready = std::mem::take(&mut self.scratch_ready);
        ready.clear();
        ready.extend((0..self.threads.len()).filter(|&i| self.threads[i].wants_cpu()));
        // Ids are unique, so the comparator is a total order and unstable
        // sort gives the same result as stable — without the merge buffer.
        ready.sort_unstable_by(|&a, &b| {
            let ta = &self.threads[a];
            let tb = &self.threads[b];
            rank(ta)
                .partial_cmp(&rank(tb))
                .unwrap()
                .then(ta.id.cmp(&tb.id))
        });
        ready.truncate(self.cores.len());

        self.sel_gen += 1;
        let gen = self.sel_gen;
        if self.sel_marks.len() < self.threads.len() {
            self.sel_marks.resize(self.threads.len(), 0);
        }
        for &i in &ready {
            self.sel_marks[i] = gen;
        }

        if !ready.is_empty() {
            self.min_vruntime = self
                .min_vruntime
                .max(
                    ready
                        .iter()
                        .map(|&i| self.threads[i].vruntime)
                        .fold(f64::INFINITY, f64::min),
                );
        }

        // Phase 1: displaced threads vacate their cores.
        if self.displaced_on_core.len() < self.cores.len() {
            self.displaced_on_core.resize(self.cores.len(), None);
        }
        self.displaced_on_core.fill(None);
        for c in 0..self.cores.len() {
            if let Some(tid) = self.cores[c].running {
                if self.sel_marks[tid.0 as usize] != gen {
                    self.cores[c].running = None;
                    let still_wants = self.threads[tid.0 as usize].wants_cpu();
                    let th = &mut self.threads[tid.0 as usize];
                    flush_state_time(th, now);
                    th.on_core = None;
                    th.state = if still_wants {
                        ThreadState::RunnablePreempted
                    } else {
                        ThreadState::Sleeping
                    };
                    th.state_since = now;
                    if self.record_events {
                        self.events.push(SchedEvent {
                            at: now,
                            thread: tid,
                            kind: SchedEventKind::SwitchOut {
                                core: c,
                                to_state: th.state,
                            },
                        });
                    }
                    if still_wants {
                        self.displaced_on_core[c] = Some(tid);
                    }
                }
            }
        }

        // Phase 2: place newly selected threads — prefer their last core.
        // A thread placed in the affinity pass gets `on_core` set, which the
        // second pass uses to skip it.
        for &i in &ready {
            if self.threads[i].on_core.is_some() {
                continue;
            }
            if let Some(c) = self.threads[i].last_core {
                if self.cores[c].running.is_none() {
                    self.place(self.threads[i].id, c, now);
                }
            }
        }
        // Remaining on any free core.
        for &i in &ready {
            if self.threads[i].on_core.is_some() {
                continue;
            }
            let tid = self.threads[i].id;
            if let Some(c) = (0..self.cores.len()).find(|&c| self.cores[c].running.is_none()) {
                self.place(tid, c, now);
            }
        }

        self.scratch_ready = ready;
    }

    fn place(&mut self, tid: ThreadId, core: usize, now: SimTime) {
        self.cores[core].running = Some(tid);
        let record = self.record_events;
        if self.threads[tid.0 as usize].state != ThreadState::Running {
            self.ctx_switches += 1;
        }
        let th = &mut self.threads[tid.0 as usize];
        let was_running = th.state == ThreadState::Running;
        flush_state_time(th, now);
        th.state = ThreadState::Running;
        th.state_since = now;
        th.on_core = Some(core);
        if let Some(last) = th.last_core {
            if last != core && !was_running {
                th.migrations += 1;
            }
        }
        th.last_core = Some(core);
        if record {
            self.events.push(SchedEvent {
                at: now,
                thread: tid,
                kind: SchedEventKind::SwitchIn { core },
            });
        }
        // If this placement displaced someone from exactly this core, this
        // thread is the preempter.
        if let Some(victim) = self.displaced_on_core[core].take() {
            if victim != tid {
                self.preemptions.push(PreemptionRecord {
                    at: now,
                    victim,
                    preempter: tid,
                    core,
                });
            }
        }
    }

    /// True when a tick would be a pure no-op: no thread wants the CPU
    /// (which implies every core is empty, since on-core threads always
    /// want the CPU). O(1) via the maintained `wants_cpu` count.
    pub fn is_idle(&self) -> bool {
        self.n_want == 0
    }

    /// Jump time forward across a provably-idle span. Exactly equivalent to
    /// `span / tick` consecutive [`Scheduler::tick`] calls while
    /// [`Scheduler::is_idle`] holds: such ticks change no thread state, and
    /// lazy state-time accounting means each blocked thread's in-progress
    /// span is implicit in `state_since` — only the clock needs to move.
    pub fn advance_idle(&mut self, span: SimDuration) {
        debug_assert!(self.is_idle(), "advance_idle on a non-idle scheduler");
        self.now = self.now + span;
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// A thread by id.
    pub fn thread(&self, tid: ThreadId) -> &Thread {
        &self.threads[tid.0 as usize]
    }

    /// A thread's cumulative per-state times through [`Scheduler::now`].
    /// The stored `Thread::times` only cover up to the last state change
    /// (lazy accounting); this adds the in-progress span for live threads.
    /// Dead threads' times were flushed when they were killed.
    pub fn times_of(&self, tid: ThreadId) -> StateTimes {
        let th = &self.threads[tid.0 as usize];
        let mut t = th.times;
        if !th.dead {
            t.add(th.state, self.now.saturating_since(th.state_since));
        }
        t
    }

    /// All threads.
    pub fn threads(&self) -> &[Thread] {
        &self.threads
    }

    /// Cores (for inspection).
    pub fn cores(&self) -> &[Core] {
        &self.cores
    }

    /// Drain completed work items in completion order.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Drain completions into a caller-provided buffer (appending), keeping
    /// the internal buffer's capacity for the next tick. The zero-alloc
    /// twin of [`Scheduler::drain_completions`].
    pub fn drain_completions_into(&mut self, out: &mut Vec<Completion>) {
        out.append(&mut self.completions);
    }

    /// Drain preemption records.
    pub fn drain_preemptions(&mut self) -> Vec<PreemptionRecord> {
        std::mem::take(&mut self.preemptions)
    }

    /// Drain preemption records as an iterator, keeping the internal
    /// buffer's capacity.
    pub fn drain_preemptions_iter(&mut self) -> std::vec::Drain<'_, PreemptionRecord> {
        self.preemptions.drain(..)
    }

    /// Drain raw scheduler events.
    pub fn drain_events(&mut self) -> Vec<SchedEvent> {
        std::mem::take(&mut self.events)
    }

    /// Drain raw scheduler events as an iterator, keeping the internal
    /// buffer's capacity.
    pub fn drain_events_iter(&mut self) -> std::vec::Drain<'_, SchedEvent> {
        self.events.drain(..)
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::new()
    }
}

// Snapshot support. The scratch buffers (`scratch_ready`, `sel_marks`,
// `sel_gen`, `displaced_on_core`) are deliberately not serialized: each is
// rebuilt from scratch inside `select` before any read (`scratch_ready` is
// cleared, `displaced_on_core` filled with `None`, and `sel_gen` increments
// *before* any `sel_marks[i] == gen` comparison, so zeroed markers can never
// alias a live generation). A restored scheduler's next tick is therefore
// behaviourally identical to the original's, only with cold buffers — the
// restored-path extension of `tests/zero_alloc.rs` pins the re-warm cost.
impl Serialize for Scheduler {
    fn to_value(&self) -> Value {
        // Serialize threads with *flushed* state times: snapshots stay
        // byte-identical to the historical eager-accounting scheme and are
        // meaningful to external consumers. `from_value` inverts the flush.
        let mut threads = self.threads.clone();
        for th in &mut threads {
            flush_state_time(th, self.now);
        }
        Value::Map(vec![
            ("cores".into(), self.cores.to_value()),
            ("threads".into(), threads.to_value()),
            ("now".into(), self.now.to_value()),
            ("completions".into(), self.completions.to_value()),
            ("preemptions".into(), self.preemptions.to_value()),
            ("events".into(), self.events.to_value()),
            ("min_vruntime".into(), self.min_vruntime.to_value()),
            ("record_events".into(), self.record_events.to_value()),
            ("ctx_switches".into(), self.ctx_switches.to_value()),
        ])
    }
}

impl Deserialize for Scheduler {
    fn from_value(v: &Value) -> Result<Self, serde::de::Error> {
        let field = |name: &str| {
            v.get(name).ok_or_else(|| {
                serde::de::Error::custom(format!("Scheduler missing field {name}"))
            })
        };
        let mut threads: Vec<Thread> = Deserialize::from_value(field("threads")?)?;
        let now: SimTime = Deserialize::from_value(field("now")?)?;
        // Snapshots carry fully-flushed state times; convert back to the
        // in-memory lazy form by deducting each live thread's in-progress
        // span (charged again on its next state change or `times_of` read).
        for th in &mut threads {
            if !th.dead {
                th.times.sub(th.state, now.saturating_since(th.state_since));
            }
        }
        let n_want = threads.iter().filter(|t| t.wants_cpu()).count() as u32;
        Ok(Scheduler {
            cores: Deserialize::from_value(field("cores")?)?,
            threads,
            now,
            completions: Deserialize::from_value(field("completions")?)?,
            preemptions: Deserialize::from_value(field("preemptions")?)?,
            events: Deserialize::from_value(field("events")?)?,
            min_vruntime: Deserialize::from_value(field("min_vruntime")?)?,
            record_events: Deserialize::from_value(field("record_events")?)?,
            ctx_switches: Deserialize::from_value(field("ctx_switches")?)?,
            scratch_ready: Vec::new(),
            sel_marks: Vec::new(),
            sel_gen: 0,
            displaced_on_core: Vec::new(),
            scratch_running: Vec::new(),
            n_want,
        })
    }
}

/// Sort key: RT (by descending priority) strictly before fair (by ascending
/// vruntime). Lower key = scheduled first.
fn rank(th: &Thread) -> (u8, f64) {
    match th.class {
        SchedClass::RealTime { prio } => (0, 255.0 - prio as f64),
        SchedClass::Fair { .. } => (1, th.vruntime),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: SimDuration = SimDuration(1_000);

    fn sched(cores: usize) -> Scheduler {
        let mut s = Scheduler::new();
        for _ in 0..cores {
            s.add_core(1.0);
        }
        s
    }

    #[test]
    fn single_thread_runs_and_completes() {
        let mut s = sched(1);
        let t = s.spawn("worker", SchedClass::NORMAL);
        s.push_work(t, 2_500.0, 7);
        for _ in 0..3 {
            s.tick(MS);
        }
        let done = s.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 7);
        assert_eq!(done[0].thread, t);
        assert_eq!(s.thread(t).state, ThreadState::Sleeping);
        assert_eq!(s.times_of(t).running, MS * 3);
    }

    #[test]
    fn core_speed_scales_execution() {
        let mut slow = Scheduler::new();
        slow.add_core(0.5);
        let t = slow.spawn("w", SchedClass::NORMAL);
        slow.push_work(t, 1_000.0, 0);
        slow.tick(MS); // only 500 µs of work done
        assert!(slow.drain_completions().is_empty());
        slow.tick(MS);
        assert_eq!(slow.drain_completions().len(), 1);
    }

    #[test]
    fn rt_preempts_fair() {
        let mut s = sched(1);
        let fair = s.spawn("video", SchedClass::NORMAL);
        let rt = s.spawn("mmcqd", SchedClass::RealTime { prio: 50 });
        s.push_work(fair, 10_000.0, 0);
        s.tick(MS);
        assert_eq!(s.thread(fair).state, ThreadState::Running);
        // mmcqd wakes with work; on the next tick it must take the core.
        s.push_work(rt, 2_000.0, 1);
        s.tick(MS);
        assert_eq!(s.thread(rt).state, ThreadState::Running);
        assert_eq!(s.thread(fair).state, ThreadState::RunnablePreempted);
        let pre = s.drain_preemptions();
        assert_eq!(pre.len(), 1);
        assert_eq!(pre[0].victim, fair);
        assert_eq!(pre[0].preempter, rt);
    }

    #[test]
    fn preempted_time_is_accounted_separately() {
        let mut s = sched(1);
        let fair = s.spawn("video", SchedClass::NORMAL);
        let rt = s.spawn("mmcqd", SchedClass::RealTime { prio: 50 });
        s.push_work(fair, 100_000.0, 0);
        s.tick(MS);
        s.push_work(rt, 3_000.0, 1);
        s.tick(MS);
        s.tick(MS);
        s.tick(MS);
        // Three ticks preempted while mmcqd ran.
        assert_eq!(s.times_of(fair).preempted, MS * 3);
        s.tick(MS); // mmcqd done: video runs again
        assert_eq!(s.thread(fair).state, ThreadState::Running);
    }

    #[test]
    fn fair_threads_share_one_core_roughly_equally() {
        let mut s = sched(1);
        let a = s.spawn("a", SchedClass::NORMAL);
        let b = s.spawn("b", SchedClass::NORMAL);
        s.push_work(a, 1e9, 0);
        s.push_work(b, 1e9, 1);
        for _ in 0..1000 {
            s.tick(MS);
        }
        let ra = s.times_of(a).running.as_micros() as f64;
        let rb = s.times_of(b).running.as_micros() as f64;
        let share = ra / (ra + rb);
        assert!((share - 0.5).abs() < 0.05, "share {share}");
    }

    #[test]
    fn weights_bias_fair_sharing() {
        let mut s = sched(1);
        let heavy = s.spawn("heavy", SchedClass::Fair { weight: 3072 });
        let light = s.spawn("light", SchedClass::Fair { weight: 1024 });
        s.push_work(heavy, 1e9, 0);
        s.push_work(light, 1e9, 1);
        for _ in 0..2000 {
            s.tick(MS);
        }
        let rh = s.times_of(heavy).running.as_micros() as f64;
        let rl = s.times_of(light).running.as_micros() as f64;
        let ratio = rh / rl;
        assert!((ratio - 3.0).abs() < 0.35, "ratio {ratio}");
    }

    #[test]
    fn two_cores_run_two_threads() {
        let mut s = sched(2);
        let a = s.spawn("a", SchedClass::NORMAL);
        let b = s.spawn("b", SchedClass::NORMAL);
        s.push_work(a, 5_000.0, 0);
        s.push_work(b, 5_000.0, 1);
        s.tick(MS);
        assert_eq!(s.thread(a).state, ThreadState::Running);
        assert_eq!(s.thread(b).state, ThreadState::Running);
        assert_ne!(s.thread(a).on_core, s.thread(b).on_core);
    }

    #[test]
    fn io_block_and_unblock() {
        let mut s = sched(1);
        let t = s.spawn("reader", SchedClass::NORMAL);
        s.push_work(t, 10_000.0, 0);
        s.tick(MS);
        s.block_io(t);
        assert_eq!(s.thread(t).state, ThreadState::IoWait);
        s.tick(MS);
        s.tick(MS);
        assert_eq!(s.times_of(t).io_wait, MS * 2);
        s.unblock_io(t);
        s.tick(MS);
        assert_eq!(s.thread(t).state, ThreadState::Running);
    }

    #[test]
    fn killed_thread_never_runs_again() {
        let mut s = sched(1);
        let t = s.spawn("victim", SchedClass::NORMAL);
        s.push_work(t, 10_000.0, 0);
        s.tick(MS);
        s.kill_thread(t);
        s.push_work(t, 1_000.0, 1); // ignored
        s.tick(MS);
        assert!(s.thread(t).dead);
        assert!(s.drain_completions().is_empty());
        assert_eq!(s.times_of(t).running, MS);
    }

    #[test]
    fn state_times_sum_to_lifetime() {
        let mut s = sched(1);
        let a = s.spawn("a", SchedClass::NORMAL);
        let b = s.spawn("b", SchedClass::NORMAL);
        s.push_work(a, 3_000.0, 0);
        s.push_work(b, 3_000.0, 1);
        for _ in 0..10 {
            s.tick(MS);
        }
        for tid in [a, b] {
            assert_eq!(
                s.times_of(tid).total(),
                MS * 10,
                "thread {:?} accounting must cover the whole run",
                tid
            );
        }
    }

    #[test]
    fn wakeup_placement_prevents_starvation() {
        let mut s = sched(1);
        let hog = s.spawn("hog", SchedClass::NORMAL);
        s.push_work(hog, 1e9, 0);
        for _ in 0..5000 {
            s.tick(MS);
        }
        // A newly woken thread must get the CPU promptly despite the hog's
        // huge accumulated vruntime... on the hog's side.
        let newcomer = s.spawn("newcomer", SchedClass::NORMAL);
        s.push_work(newcomer, 2_000.0, 9);
        let mut waited = 0;
        loop {
            s.tick(MS);
            waited += 1;
            if !s.drain_completions().is_empty() {
                break;
            }
            assert!(waited < 50, "newcomer starved");
        }
    }

    #[test]
    fn completions_report_multiple_items_per_tick() {
        let mut s = sched(1);
        let t = s.spawn("w", SchedClass::NORMAL);
        for tag in 0..4 {
            s.push_work(t, 200.0, tag);
        }
        s.tick(MS);
        let tags: Vec<u64> = s.drain_completions().iter().map(|c| c.tag).collect();
        assert_eq!(tags, vec![0, 1, 2, 3]);
    }

    #[test]
    fn affinity_keeps_thread_on_its_core() {
        let mut s = sched(2);
        let t = s.spawn("sticky", SchedClass::NORMAL);
        s.push_work(t, 500.0, 0);
        s.tick(MS);
        let first_core = s.thread(t).last_core;
        // Sleep, then wake again — should return to the same core.
        s.push_work(t, 500.0, 1);
        s.tick(MS);
        assert_eq!(s.thread(t).last_core, first_core);
        assert_eq!(s.thread(t).migrations, 0);
    }
}
