//! Property tests on scheduler invariants.

use mvqoe_sched::{SchedClass, Scheduler, ThreadState};
use mvqoe_sim::SimDuration;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Push { thread: usize, us: u32 },
    BlockIo { thread: usize },
    UnblockIo { thread: usize },
    Kill { thread: usize },
    Tick,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..6usize, 100..20_000u32).prop_map(|(thread, us)| Op::Push { thread, us }),
        1 => (0..6usize).prop_map(|thread| Op::BlockIo { thread }),
        1 => (0..6usize).prop_map(|thread| Op::UnblockIo { thread }),
        1 => (0..6usize).prop_map(|thread| Op::Kill { thread }),
        6 => Just(Op::Tick),
    ]
}

fn build() -> (Scheduler, Vec<mvqoe_sched::ThreadId>) {
    let mut s = Scheduler::new();
    s.add_core(1.0);
    s.add_core(0.5);
    let mut tids = Vec::new();
    for i in 0..5 {
        tids.push(s.spawn(format!("fair{i}"), SchedClass::NORMAL));
    }
    tids.push(s.spawn("rt", SchedClass::RealTime { prio: 40 }));
    (s, tids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// No core ever runs two threads, and no thread runs on two cores.
    #[test]
    fn exclusive_core_occupancy(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let (mut s, tids) = build();
        for op in ops {
            match op {
                Op::Push { thread, us } => s.push_work(tids[thread], us as f64, 0),
                Op::BlockIo { thread } => s.block_io(tids[thread]),
                Op::UnblockIo { thread } => s.unblock_io(tids[thread]),
                Op::Kill { thread } => s.kill_thread(tids[thread]),
                Op::Tick => s.tick(SimDuration::from_millis(1)),
            }
            // Invariant: running threads ↔ core assignments are a bijection.
            let mut seen_threads = std::collections::BTreeSet::new();
            for (core_idx, core) in s.cores().iter().enumerate() {
                if let Some(tid) = core.running {
                    prop_assert!(seen_threads.insert(tid), "thread on two cores");
                    let th = s.thread(tid);
                    prop_assert_eq!(th.on_core, Some(core_idx));
                    prop_assert_eq!(th.state, ThreadState::Running);
                    prop_assert!(!th.dead);
                }
            }
            for th in s.threads() {
                if th.state == ThreadState::Running {
                    let core = th.on_core.expect("running thread must have a core");
                    prop_assert_eq!(s.cores()[core].running, Some(th.id));
                }
            }
        }
    }

    /// State-time accounting of a never-killed thread covers exactly the
    /// ticks it lived through.
    #[test]
    fn accounting_covers_wall_time(work in prop::collection::vec(100..30_000u32, 1..20),
                                   ticks in 1..300u64) {
        let (mut s, tids) = build();
        for (i, us) in work.iter().enumerate() {
            s.push_work(tids[i % 5], *us as f64, i as u64);
        }
        for _ in 0..ticks {
            s.tick(SimDuration::from_millis(1));
        }
        for &tid in &tids {
            prop_assert_eq!(
                s.times_of(tid).total(),
                SimDuration::from_millis(ticks),
                "thread {:?}", tid
            );
        }
    }

    /// Every completion carries the tag it was pushed with, in FIFO order
    /// per thread, and all work eventually completes.
    #[test]
    fn completions_are_fifo_and_complete(tags in prop::collection::vec(0..1000u64, 1..30)) {
        let (mut s, tids) = build();
        for &tag in &tags {
            s.push_work(tids[0], 500.0, tag);
        }
        let mut seen = Vec::new();
        for _ in 0..tags.len() * 4 + 10 {
            s.tick(SimDuration::from_millis(1));
            seen.extend(s.drain_completions().into_iter().map(|c| c.tag));
        }
        prop_assert_eq!(seen, tags);
    }

    /// The RT thread, once runnable, is never left waiting while a fair
    /// thread runs.
    #[test]
    fn rt_never_starved_by_fair(fair_work in prop::collection::vec(1_000..50_000u32, 1..8)) {
        let (mut s, tids) = build();
        let rt = tids[5];
        for (i, us) in fair_work.iter().enumerate() {
            s.push_work(tids[i % 5], *us as f64, 0);
        }
        s.push_work(rt, 10_000.0, 1);
        for _ in 0..3 {
            s.tick(SimDuration::from_millis(1));
            let rt_state = s.thread(rt).state;
            if rt_state == ThreadState::Running {
                return Ok(()); // scheduled promptly
            }
        }
        // After the first tick following its wakeup the RT thread must run.
        prop_assert_eq!(s.thread(rt).state, ThreadState::Running);
    }
}
