//! The eMMC device: pending queue, serial transfer engine, completions.

use mvqoe_sim::{EventQueue, SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Identifier for an I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IoId(pub u64);

/// Direction of an I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IoKind {
    /// Read from flash into memory (major faults, segment cache misses).
    Read,
    /// Write from memory to flash (reclaim writeback).
    Write,
}

/// One queued I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoRequest {
    /// Identifier.
    pub id: IoId,
    /// Direction.
    pub kind: IoKind,
    /// Number of 4 KiB pages transferred.
    pub pages: u64,
    /// Opaque waiter token: the machine unblocks this thread when the
    /// request completes. Writeback typically has no waiter.
    pub waiter: Option<u64>,
    /// Submission time.
    pub submitted_at: SimTime,
}

/// Transfer-cost parameters.
///
/// Defaults approximate the budget eMMC 4.5/5.0 parts in the paper's
/// devices: ~120 µs command setup, reads ≈ 45 µs/page (~85 MB/s streaming,
/// much worse for scattered 4 KiB faults once setup cost is included),
/// writes ≈ 80 µs/page.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DiskParams {
    /// Fixed per-request setup cost, µs.
    pub fixed_us: f64,
    /// Per-page read cost, µs.
    pub read_us_per_page: f64,
    /// Per-page write cost, µs.
    pub write_us_per_page: f64,
    /// Latency multiplier for fault injection (1.0 = nominal).
    pub degrade_factor: f64,
    /// Log-normal service-time spread (σ). eMMC latency is long-tailed.
    pub jitter_sigma: f64,
    /// Probability a request lands during internal flash garbage
    /// collection — the notorious 50–200 ms eMMC write stalls.
    pub gc_pause_prob: f64,
    /// Service-time multiplier during a flash GC pause.
    pub gc_pause_factor: f64,
}

impl Default for DiskParams {
    fn default() -> Self {
        DiskParams {
            fixed_us: 120.0,
            read_us_per_page: 45.0,
            write_us_per_page: 80.0,
            degrade_factor: 1.0,
            jitter_sigma: 0.55,
            gc_pause_prob: 0.012,
            gc_pause_factor: 18.0,
        }
    }
}

impl DiskParams {
    /// Nominal (median) device service time for a request.
    pub fn service_time(&self, kind: IoKind, pages: u64) -> SimDuration {
        let per_page = match kind {
            IoKind::Read => self.read_us_per_page,
            IoKind::Write => self.write_us_per_page,
        };
        let us = (self.fixed_us + per_page * pages as f64) * self.degrade_factor;
        SimDuration::from_micros(us.round().max(1.0) as u64)
    }

    /// Sampled service time: nominal × log-normal jitter, with occasional
    /// flash-GC pauses.
    pub fn sample_service_time(
        &self,
        kind: IoKind,
        pages: u64,
        rng: &mut SimRng,
    ) -> SimDuration {
        let nominal = self.service_time(kind, pages).as_micros() as f64;
        // Median 0.85 × lognormal keeps the *mean* near nominal while
        // giving the long right tail real parts exhibit. σ = 0 is exact.
        let mut us = if self.jitter_sigma > 0.0 {
            nominal * rng.lognormal(0.85, self.jitter_sigma)
        } else {
            nominal
        };
        if self.gc_pause_prob > 0.0 && rng.chance(self.gc_pause_prob) {
            us *= self.gc_pause_factor;
        }
        SimDuration::from_micros(us.round().max(1.0) as u64)
    }
}

/// Cumulative device statistics.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct DiskStats {
    /// Read requests completed.
    pub reads: u64,
    /// Write requests completed.
    pub writes: u64,
    /// Pages read.
    pub pages_read: u64,
    /// Pages written.
    pub pages_written: u64,
    /// Total device busy time.
    pub busy: SimDuration,
    /// Max pending-queue depth observed.
    pub max_queue_depth: usize,
}

/// The eMMC device.
#[derive(Serialize, Deserialize)]
pub struct Disk {
    params: DiskParams,
    /// Requests waiting for mmcqd to dispatch them.
    pending: VecDeque<IoRequest>,
    /// Requests being transferred, keyed by completion time.
    inflight: EventQueue<IoRequest>,
    /// The serial transfer engine is busy until this time.
    busy_until: SimTime,
    next_id: u64,
    stats: DiskStats,
    rng: SimRng,
}

impl Disk {
    /// Create a device with the given parameters (deterministic latency).
    pub fn new(params: DiskParams) -> Disk {
        Disk::with_seed(params, 0x5d15c)
    }

    /// Create a device with a seeded latency-jitter stream.
    pub fn with_seed(params: DiskParams, seed: u64) -> Disk {
        Disk {
            params,
            pending: VecDeque::new(),
            inflight: EventQueue::new(),
            busy_until: SimTime::ZERO,
            next_id: 0,
            stats: DiskStats::default(),
            rng: SimRng::new(seed),
        }
    }

    /// Queue a read of `pages`; `waiter` is unblocked on completion.
    pub fn submit_read(&mut self, now: SimTime, pages: u64, waiter: Option<u64>) -> IoId {
        self.submit(now, IoKind::Read, pages, waiter)
    }

    /// Queue a writeback of `pages` (fire-and-forget).
    pub fn submit_write(&mut self, now: SimTime, pages: u64) -> IoId {
        self.submit(now, IoKind::Write, pages, None)
    }

    fn submit(&mut self, now: SimTime, kind: IoKind, pages: u64, waiter: Option<u64>) -> IoId {
        let id = IoId(self.next_id);
        self.next_id += 1;
        self.pending.push_back(IoRequest {
            id,
            kind,
            pages: pages.max(1),
            waiter,
            submitted_at: now,
        });
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.pending.len());
        id
    }

    /// True if requests are waiting for mmcqd dispatch.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Number of requests waiting for dispatch.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Number of requests being transferred.
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Called when the mmcqd thread has finished the CPU work for the next
    /// pending request: moves it onto the (serial) transfer engine. Returns
    /// the request, or `None` if the queue was empty.
    pub fn dispatch_next(&mut self, now: SimTime) -> Option<IoRequest> {
        let req = self.pending.pop_front()?;
        let start = if self.busy_until > now {
            self.busy_until
        } else {
            now
        };
        let service = self
            .params
            .sample_service_time(req.kind, req.pages, &mut self.rng);
        let done = start + service;
        self.busy_until = done;
        self.stats.busy += service;
        self.inflight.push(done, req);
        Some(req)
    }

    /// Collect requests whose transfer finished by `now`.
    pub fn poll(&mut self, now: SimTime) -> Vec<IoRequest> {
        let mut done = Vec::new();
        self.poll_into(now, &mut done);
        done
    }

    /// Collect finished requests into a caller-provided buffer (appending).
    /// The zero-alloc twin of [`Disk::poll`].
    pub fn poll_into(&mut self, now: SimTime, out: &mut Vec<IoRequest>) {
        while let Some((_, req)) = self.inflight.pop_due(now) {
            match req.kind {
                IoKind::Read => {
                    self.stats.reads += 1;
                    self.stats.pages_read += req.pages;
                }
                IoKind::Write => {
                    self.stats.writes += 1;
                    self.stats.pages_written += req.pages;
                }
            }
            out.push(req);
        }
    }

    /// When the next in-flight request completes, if any.
    pub fn next_completion(&self) -> Option<SimTime> {
        self.inflight.peek_time()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// The parameters in force (mutable for fault injection).
    pub fn params_mut(&mut self) -> &mut DiskParams {
        &mut self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    /// Deterministic parameters for exact-latency assertions.
    fn flat() -> DiskParams {
        DiskParams {
            jitter_sigma: 0.0,
            gc_pause_prob: 0.0,
            ..DiskParams::default()
        }
    }

    #[test]
    fn read_completes_after_service_time() {
        let mut d = Disk::new(flat());
        d.submit_read(t(0), 4, Some(42));
        assert!(d.has_pending());
        let req = d.dispatch_next(t(0)).unwrap();
        assert_eq!(req.waiter, Some(42));
        assert!(!d.has_pending());
        assert_eq!(d.inflight_len(), 1);
        // 120 + 4*45 = 300 µs
        assert!(d.poll(t(299)).is_empty());
        let done = d.poll(t(300));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, req.id);
        assert_eq!(d.stats().pages_read, 4);
    }

    #[test]
    fn serial_engine_queues_transfers() {
        let mut d = Disk::new(flat());
        d.submit_read(t(0), 1, None); // 165 µs
        d.submit_read(t(0), 1, None);
        d.dispatch_next(t(0));
        d.dispatch_next(t(0));
        // Second starts only when the first ends: completes at 330 µs.
        assert_eq!(d.poll(t(165)).len(), 1);
        assert!(d.poll(t(329)).is_empty());
        assert_eq!(d.poll(t(330)).len(), 1);
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let p = DiskParams::default();
        assert!(p.service_time(IoKind::Write, 8) > p.service_time(IoKind::Read, 8));
    }

    #[test]
    fn degrade_factor_injects_latency() {
        let mut p = DiskParams::default();
        let nominal = p.service_time(IoKind::Read, 8);
        p.degrade_factor = 3.0;
        assert_eq!(p.service_time(IoKind::Read, 8).as_micros(), nominal.as_micros() * 3);
    }

    #[test]
    fn dispatch_on_empty_queue_is_none() {
        let mut d = Disk::new(flat());
        assert!(d.dispatch_next(t(0)).is_none());
        assert!(d.poll(t(1000)).is_empty());
        assert_eq!(d.next_completion(), None);
    }

    #[test]
    fn zero_page_request_is_clamped() {
        let mut d = Disk::new(flat());
        d.submit_write(t(0), 0);
        let req = d.dispatch_next(t(0)).unwrap();
        assert_eq!(req.pages, 1);
    }

    #[test]
    fn stats_track_depth_and_busy() {
        let mut d = Disk::new(flat());
        for _ in 0..5 {
            d.submit_write(t(0), 2);
        }
        assert_eq!(d.stats().max_queue_depth, 5);
        while d.has_pending() {
            d.dispatch_next(t(0));
        }
        let done = d.poll(t(10_000_000));
        assert_eq!(done.len(), 5);
        assert_eq!(d.stats().writes, 5);
        assert_eq!(d.stats().pages_written, 10);
        assert!(d.stats().busy > SimDuration::ZERO);
    }
}
