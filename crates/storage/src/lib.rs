//! eMMC storage model.
//!
//! The paper identifies `mmcqd` — the kernel daemon managing queued I/O on
//! eMMC storage — as the single biggest thief of video-thread CPU time under
//! memory pressure (Table 5: 26.6× more preemptions, 27.5× longer waits).
//! Disk traffic explodes under pressure because reclaim writes back dirty
//! pages and evicted file pages must be re-read on refault (thrashing).
//!
//! This crate models the device side: a FIFO of pending requests, a serial
//! transfer engine with per-page read/write costs, and completion polling.
//! The *CPU* side of `mmcqd` lives in the device machine: each pending
//! request costs mmcqd thread time (at real-time priority) before it is
//! dispatched here — so heavy I/O load translates directly into foreground
//! preemption, as in the paper.

pub mod disk;

pub use disk::{Disk, DiskParams, DiskStats, IoId, IoKind, IoRequest};
