//! Property tests for the live telemetry fold path: folding device-report
//! streams shard-by-shard, in *any* arrival interleaving and at *any* shard
//! count, must yield the same [`MetricsSnapshot`] — and the same Prometheus
//! text — as a single serial fold in device order.
//!
//! The generated streams carry integer-valued samples (report counts,
//! kill counts, microsecond latencies), matching what devices actually
//! upload; sums of such values stay far below 2^53, so f64 addition is
//! exact and the merge algebra (counter add, gauge max, bucket-wise
//! histogram add) is genuinely order-insensitive down to the byte.

use mvqoe_metrics::{prometheus, MetricsRegistry, MetricsSnapshot};
use proptest::prelude::*;

/// One device's contribution to the fleet registry, as folded by the
/// telemetry service from its 1 Hz report stream.
#[derive(Debug, Clone)]
struct DeviceStream {
    reports: u32,
    kills: u16,
    pressure_peak: u16,
    fold_us: Vec<u16>,
}

fn stream_strategy() -> impl Strategy<Value = DeviceStream> {
    (
        0..10_000u32,
        0..50u16,
        0..1000u16,
        prop::collection::vec(any::<u16>(), 0..20),
    )
        .prop_map(|(reports, kills, pressure_peak, fold_us)| DeviceStream {
            reports,
            kills,
            pressure_peak,
            fold_us,
        })
}

fn snapshot_of(s: &DeviceStream) -> MetricsSnapshot {
    let mut r = MetricsRegistry::new();
    r.add_counter("fleet.reports_total", s.reports as u64);
    r.add_counter("fleet.kills_total", s.kills as u64);
    r.set_gauge("fleet.pressure_peak", s.pressure_peak as f64);
    let h = r.histogram("telemetryd.fold_latency_us");
    for &v in &s.fold_us {
        r.observe(h, v as f64);
    }
    r.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sharded_interleaved_fold_matches_the_serial_fold(
        streams in prop::collection::vec(stream_strategy(), 1..24),
        keys in prop::collection::vec(any::<u32>(), 24),
        n_shards in 1usize..6,
    ) {
        let devices: Vec<MetricsSnapshot> = streams.iter().map(snapshot_of).collect();

        // The reference: one serial fold in device-id order.
        let serial = MetricsSnapshot::merged(&devices);

        // The live path: reports arrive in an arbitrary interleaving
        // (a permutation derived from the generated sort keys), land in
        // the shard keyed by device id, and the shards merge at scrape
        // time in ring order.
        let mut order: Vec<usize> = (0..devices.len()).collect();
        order.sort_by_key(|&i| (keys[i % keys.len()], i));
        let mut shards = vec![MetricsSnapshot::default(); n_shards];
        for &i in &order {
            shards[i % n_shards].merge(&devices[i]);
        }
        let mut folded = MetricsSnapshot::default();
        for s in &shards {
            folded.merge(s);
        }

        prop_assert_eq!(&folded, &serial, "snapshot must be interleaving-invariant");
        let folded_text = prometheus::encode(&folded);
        let serial_text = prometheus::encode(&serial);
        prop_assert_eq!(&folded_text, &serial_text, "exposition must be byte-identical");
        let stats = prometheus::validate(&serial_text)
            .map_err(|e| TestCaseError::fail(format!("invalid exposition: {e}")))?;
        prop_assert_eq!(stats.families, 4);
    }

    #[test]
    fn exposition_of_any_merged_snapshot_validates(
        streams in prop::collection::vec(stream_strategy(), 0..12),
    ) {
        let devices: Vec<MetricsSnapshot> = streams.iter().map(snapshot_of).collect();
        let merged = MetricsSnapshot::merged(&devices);
        let text = prometheus::encode(&merged);
        prometheus::validate(&text)
            .map_err(|e| TestCaseError::fail(format!("invalid exposition: {e}")))?;
    }
}
