//! Prometheus text-format exposition (version 0.0.4) of a
//! [`MetricsSnapshot`], plus a strict validator for linting scrapes.
//!
//! The registry's dotted names (`video.decode_us`) are sanitised into the
//! `[a-zA-Z_:][a-zA-Z0-9_:]*` charset Prometheus requires, each family gets
//! `# HELP` and `# TYPE` lines, and log₂ histograms are re-expressed with
//! *cumulative* `_bucket{le="..."}` samples ending in the mandatory
//! `le="+Inf"` bucket equal to `_count`. Encoding walks the snapshot's
//! `BTreeMap`s, so the same snapshot always serialises to the same bytes.

use crate::snapshot::MetricsSnapshot;
use std::collections::{BTreeMap, HashSet};
use std::fmt::Write as _;

/// Sanitise a metric name into the Prometheus charset: every character
/// outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit is prefixed
/// with `_`. Empty names become a single `_`.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for ch in name.chars() {
        let ok = ch.is_ascii_alphanumeric() || ch == '_' || ch == ':';
        out.push(if ok { ch } else { '_' });
    }
    if out.is_empty() || out.as_bytes()[0].is_ascii_digit() {
        out.insert(0, '_');
    }
    out
}

/// Format a float the way Prometheus expects (`NaN`, `+Inf`, `-Inf`, else
/// Rust's shortest round-trip `Display`).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn help_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Claim a unique family name: sanitised, with a `_2`, `_3`, ... suffix when
/// two registry names collapse onto the same sanitised spelling.
fn claim(name: &str, used: &mut HashSet<String>) -> String {
    let base = sanitize(name);
    let mut cand = base.clone();
    let mut n = 2u32;
    while !used.insert(cand.clone()) {
        cand = format!("{base}_{n}");
        n += 1;
    }
    cand
}

/// Encode a snapshot as Prometheus text exposition. Counters first, then
/// gauges, then histograms, each in snapshot (name-sorted) order.
pub fn encode(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut used: HashSet<String> = HashSet::new();
    for (name, v) in &snap.counters {
        let fam = claim(name, &mut used);
        let _ = writeln!(out, "# HELP {fam} Counter '{}'.", help_escape(name));
        let _ = writeln!(out, "# TYPE {fam} counter");
        let _ = writeln!(out, "{fam} {v}");
    }
    for (name, v) in &snap.gauges {
        let fam = claim(name, &mut used);
        let _ = writeln!(out, "# HELP {fam} Gauge '{}'.", help_escape(name));
        let _ = writeln!(out, "# TYPE {fam} gauge");
        let _ = writeln!(out, "{fam} {}", fmt_value(*v));
    }
    for (name, h) in &snap.histograms {
        let fam = claim(name, &mut used);
        let _ = writeln!(out, "# HELP {fam} Histogram '{}'.", help_escape(name));
        let _ = writeln!(out, "# TYPE {fam} histogram");
        let mut cum = 0u64;
        for &(upper, c) in &h.buckets {
            cum += c;
            let _ = writeln!(out, "{fam}_bucket{{le=\"{upper}\"}} {cum}");
        }
        let _ = writeln!(out, "{fam}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{fam}_sum {}", fmt_value(h.sum));
        let _ = writeln!(out, "{fam}_count {}", h.count);
    }
    out
}

/// Summary of a validated exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpositionStats {
    /// Metric families declared with a `# TYPE` line.
    pub families: usize,
    /// Total sample lines.
    pub samples: usize,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && !name.as_bytes()[0].is_ascii_digit()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "NaN" => Ok(f64::NAN),
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        _ => s.parse::<f64>().map_err(|_| format!("bad value '{s}'")),
    }
}

#[derive(Default)]
struct HistState {
    buckets: Vec<(f64, f64)>,
    sum: Option<f64>,
    count: Option<f64>,
}

/// Validate Prometheus text exposition. Checks line syntax, the name
/// charset, TYPE-before-sample ordering, no duplicate TYPE lines, that every
/// declared family has samples, and — for histograms — strictly increasing
/// `le` bounds, non-decreasing cumulative counts, and a final `+Inf` bucket
/// equal to `_count`.
pub fn validate(text: &str) -> Result<ExpositionStats, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut sampled: BTreeMap<String, usize> = BTreeMap::new();
    let mut hists: BTreeMap<String, HistState> = BTreeMap::new();
    let mut n_samples = 0usize;

    for (i, line) in text.lines().enumerate() {
        let ln = i + 1;
        let err = |why: String| format!("line {ln}: {why}");
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(r) = rest.strip_prefix("HELP ") {
                let name = r.split_whitespace().next().unwrap_or("");
                if !valid_name(name) {
                    return Err(err(format!("HELP for invalid name '{name}'")));
                }
            } else if let Some(r) = rest.strip_prefix("TYPE ") {
                let mut it = r.split_whitespace();
                let name = it.next().unwrap_or("");
                let ty = it.next().unwrap_or("");
                if !valid_name(name) {
                    return Err(err(format!("TYPE for invalid name '{name}'")));
                }
                if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&ty) {
                    return Err(err(format!("unknown type '{ty}' for '{name}'")));
                }
                if sampled.contains_key(name) {
                    return Err(err(format!("TYPE for '{name}' after its samples")));
                }
                if types.insert(name.to_string(), ty.to_string()).is_some() {
                    return Err(err(format!("duplicate TYPE for '{name}'")));
                }
            }
            // Other comment lines are legal and ignored.
            continue;
        }

        // Sample line: `name 3`, or `name{le="16"} 3`.
        let (name, labels, value) = match line.find('{') {
            Some(open) => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| err("unbalanced '{'".to_string()))?;
                if close < open {
                    return Err(err("unbalanced '{'".to_string()));
                }
                (
                    &line[..open],
                    Some(&line[open + 1..close]),
                    line[close + 1..].trim(),
                )
            }
            None => {
                let (name, value) = line
                    .split_once(' ')
                    .ok_or_else(|| err("sample line has no value".to_string()))?;
                (name, None, value.trim())
            }
        };
        if !valid_name(name) {
            return Err(err(format!("invalid sample name '{name}'")));
        }
        let value = parse_value(value).map_err(err)?;
        n_samples += 1;

        // Resolve the family this sample belongs to.
        let (family, suffix) = if types.contains_key(name) {
            (name, "")
        } else if let Some(base) = name.strip_suffix("_bucket") {
            (base, "_bucket")
        } else if let Some(base) = name.strip_suffix("_sum") {
            (base, "_sum")
        } else if let Some(base) = name.strip_suffix("_count") {
            (base, "_count")
        } else {
            return Err(err(format!("sample '{name}' has no TYPE declaration")));
        };
        let ty = types
            .get(family)
            .ok_or_else(|| err(format!("sample '{name}' has no TYPE declaration")))?
            .clone();
        *sampled.entry(family.to_string()).or_insert(0) += 1;

        match (ty.as_str(), suffix) {
            ("counter", "") | ("gauge", "") | ("untyped", "") => {}
            ("histogram", "_bucket") => {
                let labels =
                    labels.ok_or_else(|| err(format!("'{name}' bucket has no le label")))?;
                let le = labels
                    .strip_prefix("le=\"")
                    .and_then(|r| r.strip_suffix('"'))
                    .ok_or_else(|| err(format!("'{name}' bucket has no le label")))?;
                let le = parse_value(le).map_err(err)?;
                hists.entry(family.to_string()).or_default().buckets.push((le, value));
            }
            ("histogram", "_sum") => {
                hists.entry(family.to_string()).or_default().sum = Some(value);
            }
            ("histogram", "_count") => {
                hists.entry(family.to_string()).or_default().count = Some(value);
            }
            _ => {
                return Err(err(format!(
                    "sample '{name}' does not fit its family's type '{ty}'"
                )));
            }
        }
    }

    for (family, ty) in &types {
        if !sampled.contains_key(family.as_str()) {
            return Err(format!("family '{family}' declared but has no samples"));
        }
        if ty == "histogram" {
            let h = hists
                .get(family.as_str())
                .ok_or_else(|| format!("histogram '{family}' has no bucket samples"))?;
            if h.buckets.is_empty() {
                return Err(format!("histogram '{family}' has no buckets"));
            }
            for w in h.buckets.windows(2) {
                if !(w[1].0 > w[0].0) {
                    return Err(format!(
                        "histogram '{family}': le bounds not strictly increasing"
                    ));
                }
                if w[1].1 < w[0].1 {
                    return Err(format!(
                        "histogram '{family}': bucket counts not cumulative"
                    ));
                }
            }
            let last = h.buckets.last().unwrap();
            if last.0 != f64::INFINITY {
                return Err(format!("histogram '{family}': missing le=\"+Inf\" bucket"));
            }
            let count = h
                .count
                .ok_or_else(|| format!("histogram '{family}': missing _count"))?;
            if h.sum.is_none() {
                return Err(format!("histogram '{family}': missing _sum"));
            }
            if last.1 != count {
                return Err(format!(
                    "histogram '{family}': +Inf bucket {} != count {count}",
                    last.1
                ));
            }
        }
    }

    Ok(ExpositionStats {
        families: types.len(),
        samples: n_samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;
    use crate::MetricsRegistry;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut r = MetricsRegistry::new();
        let c = r.counter("kernel.pgscan_kswapd");
        let g = r.gauge("mem.pss_peak_mib");
        let h = r.histogram("video.decode_us");
        r.inc(c, 7);
        r.set(g, 141.5);
        for v in [1.0, 2.0, 3.0, 100.0] {
            r.observe(h, v);
        }
        r.snapshot()
    }

    #[test]
    fn sanitizes_into_the_prometheus_charset() {
        assert_eq!(sanitize("video.decode_us"), "video_decode_us");
        assert_eq!(sanitize("a:b_c9"), "a:b_c9");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize("héllo wörld"), "h_llo_w_rld");
        assert_eq!(sanitize(""), "_");
    }

    #[test]
    fn encodes_help_type_and_cumulative_buckets() {
        let text = encode(&sample_snapshot());
        assert!(text.contains("# HELP kernel_pgscan_kswapd Counter 'kernel.pgscan_kswapd'."));
        assert!(text.contains("# TYPE kernel_pgscan_kswapd counter"));
        assert!(text.contains("kernel_pgscan_kswapd 7"));
        assert!(text.contains("# TYPE mem_pss_peak_mib gauge"));
        assert!(text.contains("mem_pss_peak_mib 141.5"));
        // Observations 1,2,3,100 land in buckets 1,2,4,128 — cumulative
        // counts 1,2,3,4 with the +Inf bucket equal to the total count.
        assert!(text.contains("video_decode_us_bucket{le=\"1\"} 1"));
        assert!(text.contains("video_decode_us_bucket{le=\"2\"} 2"));
        assert!(text.contains("video_decode_us_bucket{le=\"4\"} 3"));
        assert!(text.contains("video_decode_us_bucket{le=\"128\"} 4"));
        assert!(text.contains("video_decode_us_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("video_decode_us_sum 106"));
        assert!(text.contains("video_decode_us_count 4"));
        let stats = validate(&text).expect("own exposition validates");
        assert_eq!(stats.families, 3);
        assert_eq!(stats.samples, 9);
    }

    #[test]
    fn colliding_sanitized_names_stay_distinct() {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("a.b".into(), 1);
        s.counters.insert("a_b".into(), 2);
        let text = encode(&s);
        assert!(text.contains("a_b 1"));
        assert!(text.contains("a_b_2 2"));
        validate(&text).expect("collision-suffixed exposition validates");
    }

    #[test]
    fn empty_histograms_still_expose_a_valid_family() {
        let mut s = MetricsSnapshot::default();
        s.histograms.insert("idle".into(), Histogram::new().snapshot());
        let text = encode(&s);
        assert!(text.contains("idle_bucket{le=\"+Inf\"} 0"));
        validate(&text).expect("empty histogram validates");
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        // Sample with no TYPE declaration.
        assert!(validate("orphan 3\n").is_err());
        // Bad metric name.
        assert!(validate("# TYPE 9bad counter\n9bad 1\n").is_err());
        // Duplicate TYPE.
        assert!(validate("# TYPE x counter\n# TYPE x counter\nx 1\n").is_err());
        // TYPE after its samples.
        assert!(validate("x 1\n# TYPE x counter\n").is_err());
        // Declared family with no samples.
        assert!(validate("# TYPE x counter\n").is_err());
        // Histogram without +Inf.
        assert!(validate(concat!(
            "# TYPE h histogram\n",
            "h_bucket{le=\"1\"} 1\n",
            "h_sum 1\nh_count 1\n"
        ))
        .is_err());
        // Non-cumulative buckets.
        assert!(validate(concat!(
            "# TYPE h histogram\n",
            "h_bucket{le=\"1\"} 5\n",
            "h_bucket{le=\"+Inf\"} 3\n",
            "h_sum 1\nh_count 3\n"
        ))
        .is_err());
        // +Inf bucket disagreeing with _count.
        assert!(validate(concat!(
            "# TYPE h histogram\n",
            "h_bucket{le=\"+Inf\"} 3\n",
            "h_sum 1\nh_count 4\n"
        ))
        .is_err());
        // Unparsable value.
        assert!(validate("# TYPE x counter\nx pony\n").is_err());
    }

    #[test]
    fn non_finite_gauges_round_trip() {
        let mut s = MetricsSnapshot::default();
        s.gauges.insert("inf".into(), f64::INFINITY);
        s.gauges.insert("nan".into(), f64::NAN);
        let text = encode(&s);
        assert!(text.contains("inf +Inf"));
        assert!(text.contains("nan NaN"));
        validate(&text).expect("non-finite values validate");
    }
}
