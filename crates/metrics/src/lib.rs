//! Cross-layer metrics for the simulator: deterministic counters, gauges,
//! and log-bucketed histograms.
//!
//! The paper's diagnosis (§5) and the KPI monitors it cites live on
//! per-layer time series and distributions, not just end-of-run aggregates.
//! This crate is the registry those numbers flow through: the kernel counts
//! reclaim passes and faults by class, the scheduler counts context
//! switches and preemptions, the video pipeline records decode-time
//! distributions and dropped/late frames, and the ABR counts quality
//! switches.
//!
//! **Determinism.** Metrics never feed back into the simulation: recording
//! draws no randomness and takes no locks, and a snapshot of the same run
//! is identical every time. A [`MetricsRegistry`] built with
//! [`MetricsRegistry::disabled`] turns every record call into a single
//! branch on a `bool`, so golden outputs stay byte-identical whether or not
//! the telemetry plumbing is compiled into a caller.

pub mod histogram;
pub mod prometheus;
pub mod registry;
pub mod selfprof;
pub mod snapshot;

pub use histogram::Histogram;
pub use registry::{CounterId, GaugeId, HistogramId, MetricsRegistry};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot};

use std::sync::{Arc, Mutex};

/// The telemetry handle a session carries: today just the metrics registry,
/// later the place tracing/export switches hang off.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// The metrics registry for this run.
    pub metrics: MetricsRegistry,
}

impl Telemetry {
    /// A handle that records everything.
    pub fn enabled() -> Telemetry {
        Telemetry {
            metrics: MetricsRegistry::new(),
        }
    }

    /// A handle whose record calls are single-branch no-ops.
    pub fn disabled() -> Telemetry {
        Telemetry {
            metrics: MetricsRegistry::disabled(),
        }
    }

    /// Snapshot the current metric values.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

/// A clonable, thread-shared registry handle for long-lived services: many
/// worker threads record into one registry, a scraper snapshots it.
///
/// Single-run simulation code keeps using the unsynchronised
/// [`MetricsRegistry`] directly — this wrapper exists for the telemetry
/// service, where ingest workers and HTTP handlers outlive any one run.
/// Lock poisoning is deliberately ignored: metrics are monotone counters
/// and gauges, always safe to keep recording into.
#[derive(Debug, Clone, Default)]
pub struct SharedRegistry(Arc<Mutex<MetricsRegistry>>);

impl SharedRegistry {
    /// A recording shared registry.
    pub fn new() -> SharedRegistry {
        SharedRegistry(Arc::new(Mutex::new(MetricsRegistry::new())))
    }

    /// A no-op shared registry.
    pub fn disabled() -> SharedRegistry {
        SharedRegistry(Arc::new(Mutex::new(MetricsRegistry::disabled())))
    }

    /// Run `f` with the registry locked.
    pub fn with<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> R {
        let mut guard = self.0.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut guard)
    }

    /// Snapshot the current metric values.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.with(|r| r.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_registry_is_usable_across_threads() {
        let shared = SharedRegistry::new();
        let id = shared.with(|r| r.counter("svc.requests"));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        shared.with(|r| r.inc(id, 1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.snapshot().counters["svc.requests"], 400);
    }
}
