//! Cross-layer metrics for the simulator: deterministic counters, gauges,
//! and log-bucketed histograms.
//!
//! The paper's diagnosis (§5) and the KPI monitors it cites live on
//! per-layer time series and distributions, not just end-of-run aggregates.
//! This crate is the registry those numbers flow through: the kernel counts
//! reclaim passes and faults by class, the scheduler counts context
//! switches and preemptions, the video pipeline records decode-time
//! distributions and dropped/late frames, and the ABR counts quality
//! switches.
//!
//! **Determinism.** Metrics never feed back into the simulation: recording
//! draws no randomness and takes no locks, and a snapshot of the same run
//! is identical every time. A [`MetricsRegistry`] built with
//! [`MetricsRegistry::disabled`] turns every record call into a single
//! branch on a `bool`, so golden outputs stay byte-identical whether or not
//! the telemetry plumbing is compiled into a caller.

pub mod histogram;
pub mod registry;
pub mod snapshot;

pub use histogram::Histogram;
pub use registry::{CounterId, GaugeId, HistogramId, MetricsRegistry};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot};

/// The telemetry handle a session carries: today just the metrics registry,
/// later the place tracing/export switches hang off.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// The metrics registry for this run.
    pub metrics: MetricsRegistry,
}

impl Telemetry {
    /// A handle that records everything.
    pub fn enabled() -> Telemetry {
        Telemetry {
            metrics: MetricsRegistry::new(),
        }
    }

    /// A handle whose record calls are single-branch no-ops.
    pub fn disabled() -> Telemetry {
        Telemetry {
            metrics: MetricsRegistry::disabled(),
        }
    }

    /// Snapshot the current metric values.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}
