//! The metric registry: names are registered once up front, then the hot
//! paths record through small integer ids — no hashing, no allocation.
//! Name lookups (`counter_value`, `add_counter`, `set_gauge`, and the
//! scrape path) go through an O(1) name→id hash index; determinism is
//! unaffected because snapshots iterate the registration-order `Vec`s, the
//! index is never iterated.

use crate::histogram::Histogram;
use crate::snapshot::MetricsSnapshot;
use std::collections::HashMap;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Registered metrics for one run. When built with
/// [`MetricsRegistry::disabled`], registration hands out dummy ids and every
/// record call is a single branch — cheap enough to leave in hot paths.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    enabled: bool,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
    by_name: HashMap<String, (Kind, usize)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricsRegistry {
    /// A recording registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            enabled: true,
            ..MetricsRegistry::default()
        }
    }

    /// A no-op registry: ids come back as dummies and recording does
    /// nothing beyond testing one `bool`.
    pub fn disabled() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Whether this registry records anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Register (or look up) a monotone counter.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if !self.enabled {
            return CounterId(0);
        }
        if let Some(&(Kind::Counter, i)) = self.by_name.get(name) {
            return CounterId(i);
        }
        let i = self.counters.len();
        self.counters.push((name.to_string(), 0));
        self.by_name.insert(name.to_string(), (Kind::Counter, i));
        CounterId(i)
    }

    /// Register (or look up) a gauge (last value wins within a run; merges
    /// across runs keep the maximum).
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if !self.enabled {
            return GaugeId(0);
        }
        if let Some(&(Kind::Gauge, i)) = self.by_name.get(name) {
            return GaugeId(i);
        }
        let i = self.gauges.len();
        self.gauges.push((name.to_string(), 0.0));
        self.by_name.insert(name.to_string(), (Kind::Gauge, i));
        GaugeId(i)
    }

    /// Register (or look up) a log₂-bucketed histogram.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        if !self.enabled {
            return HistogramId(0);
        }
        if let Some(&(Kind::Histogram, i)) = self.by_name.get(name) {
            return HistogramId(i);
        }
        let i = self.histograms.len();
        self.histograms.push((name.to_string(), Histogram::new()));
        self.by_name.insert(name.to_string(), (Kind::Histogram, i));
        HistogramId(i)
    }

    /// Add `n` to a counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId, n: u64) {
        if self.enabled {
            self.counters[id.0].1 += n;
        }
    }

    /// Set a gauge.
    #[inline]
    pub fn set(&mut self, id: GaugeId, v: f64) {
        if self.enabled {
            self.gauges[id.0].1 = v;
        }
    }

    /// Record one histogram observation.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, v: f64) {
        if self.enabled {
            self.histograms[id.0].1.observe(v);
        }
    }

    /// Register-and-add in one call, for cold paths that fold in totals at
    /// the end of a run (e.g. absorbing `/proc/vmstat`-style counters).
    pub fn add_counter(&mut self, name: &str, n: u64) {
        if self.enabled {
            let id = self.counter(name);
            self.counters[id.0].1 += n;
        }
    }

    /// Register-and-set in one call (cold paths).
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        if self.enabled {
            let id = self.gauge(name);
            self.gauges[id.0].1 = v;
        }
    }

    /// Current value of a counter by name (None when absent or disabled).
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.by_name.get(name) {
            Some(&(Kind::Counter, i)) => Some(self.counters[i].1),
            _ => None,
        }
    }

    /// Current value of a gauge by name (None when absent or disabled).
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        match self.by_name.get(name) {
            Some(&(Kind::Gauge, i)) => Some(self.gauges[i].1),
            _ => None,
        }
    }

    /// Snapshot every metric into a serializable, name-sorted form.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(n, v)| (n.clone(), *v))
                .collect(),
            gauges: self.gauges.iter().map(|(n, v)| (n.clone(), *v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_records_and_snapshots() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("kernel.pgscan_kswapd");
        let g = r.gauge("mem.pss_peak_mib");
        let h = r.histogram("video.decode_us");
        r.inc(c, 3);
        r.inc(c, 2);
        r.set(g, 141.5);
        r.observe(h, 900.0);
        let s = r.snapshot();
        assert_eq!(s.counters.get("kernel.pgscan_kswapd"), Some(&5));
        assert_eq!(s.gauges.get("mem.pss_peak_mib"), Some(&141.5));
        assert_eq!(s.histograms.get("video.decode_us").unwrap().count, 1);
    }

    #[test]
    fn registration_is_idempotent() {
        let mut r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        assert_eq!(a, b);
        r.inc(a, 1);
        r.inc(b, 1);
        assert_eq!(r.counter_value("x"), Some(2));
        assert_eq!(r.snapshot().counters.len(), 1);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut r = MetricsRegistry::disabled();
        let c = r.counter("x");
        r.inc(c, 10);
        r.add_counter("y", 5);
        r.set_gauge("z", 1.0);
        let s = r.snapshot();
        assert!(s.counters.is_empty() && s.gauges.is_empty() && s.histograms.is_empty());
        assert!(!r.enabled());
        assert_eq!(r.counter_value("x"), None);
    }

    #[test]
    fn ids_are_stable_under_interleaved_registration() {
        // The name index may reorganise internally, but the id handed out
        // at first registration must survive arbitrary later churn: the
        // scrape path and long-lived services cache ids across threads.
        let mut r = MetricsRegistry::new();
        let ids: Vec<CounterId> = (0..64).map(|i| r.counter(&format!("c{i}"))).collect();
        for i in 0..64 {
            r.gauge(&format!("g{i}"));
            r.histogram(&format!("h{i}"));
            assert_eq!(
                r.counter(&format!("c{i}")),
                ids[i],
                "re-registration must return the original id"
            );
        }
        for (i, id) in ids.iter().enumerate() {
            r.inc(*id, i as u64);
        }
        for i in 0..64 {
            assert_eq!(r.counter_value(&format!("c{i}")), Some(i as u64));
        }
        r.set_gauge("g7", 7.5);
        assert_eq!(r.gauge_value("g7"), Some(7.5));
    }

    #[test]
    fn same_name_different_kind_gets_its_own_slot() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("dual");
        let g = r.gauge("dual");
        r.inc(c, 1);
        r.set(g, 2.0);
        // Last registration of a name wins the lookup table, but both slots
        // record; snapshot keys are per-kind maps so neither is lost.
        let s = r.snapshot();
        assert_eq!(s.counters.get("dual"), Some(&1));
        assert_eq!(s.gauges.get("dual"), Some(&2.0));
    }
}
