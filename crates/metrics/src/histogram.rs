//! A deterministic log-bucketed histogram.
//!
//! Buckets are powers of two: bucket `i` holds values `v` with
//! `2^(i-1) < v <= 2^i` (bucket 0 holds `v <= 1`). Bucketing goes through
//! integer `leading_zeros`, not floating-point `log2`, so the layout is
//! identical on every platform — a histogram of the same run always
//! serializes to the same bytes.

use crate::snapshot::HistogramSnapshot;

/// Number of power-of-two buckets: enough for any `u64` magnitude.
pub const N_BUCKETS: usize = 65;

/// A fixed-layout log₂ histogram of non-negative values.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; N_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; N_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

/// The bucket index for a value (negative values clamp to bucket 0).
fn bucket_of(v: f64) -> usize {
    let n = if v.is_finite() && v > 1.0 { v.ceil() as u64 } else { 0 };
    if n <= 1 {
        0
    } else {
        64 - (n - 1).leading_zeros() as usize
    }
}

/// The inclusive upper bound of a bucket.
pub fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        1u64 << i
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        let v = if v.is_finite() { v.max(0.0) } else { return };
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate quantile `q` in `[0, 1]` as the upper bound of the bucket
    /// where the cumulative count crosses `q · count` (0 when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper(i) as f64;
            }
        }
        self.max
    }

    /// Fold another histogram into this one (bucket-wise; rep-order
    /// independent, so merging per-repetition snapshots is deterministic).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// A serializable snapshot (only non-empty buckets).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
            .collect();
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(1.0), 0);
        assert_eq!(bucket_of(2.0), 1);
        assert_eq!(bucket_of(3.0), 2);
        assert_eq!(bucket_of(4.0), 2);
        assert_eq!(bucket_of(5.0), 3);
        assert_eq!(bucket_of(1024.0), 10);
        assert_eq!(bucket_of(1025.0), 11);
    }

    #[test]
    fn observes_and_summarizes() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 106.0).abs() < 1e-9);
        assert!((h.mean() - 26.5).abs() < 1e-9);
        let s = h.snapshot();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        // Buckets: 1→0, 2→1, 3→2, 100→7 (64<100<=128).
        assert_eq!(s.buckets, vec![(1, 1), (2, 1), (4, 1), (128, 1)]);
    }

    #[test]
    fn quantiles_walk_buckets() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.observe(10.0); // bucket upper 16
        }
        h.observe(1000.0); // bucket upper 1024
        assert_eq!(h.quantile(0.5), 16.0);
        assert_eq!(h.quantile(0.99), 16.0);
        assert_eq!(h.quantile(1.0), 1024.0);
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1.0, 5.0, 9.0] {
            a.observe(v);
        }
        for v in [2.0, 700.0] {
            b.observe(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(format!("{:?}", ab.snapshot()), format!("{:?}", ba.snapshot()));
        assert_eq!(ab.count(), 5);
    }

    #[test]
    fn empty_histogram_is_benign() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        let s = h.snapshot();
        assert_eq!((s.min, s.max, s.count), (0.0, 0.0, 0));
        assert!(s.buckets.is_empty());
    }
}
