//! Serializable metric snapshots and their deterministic merge.

use crate::histogram::Histogram;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A histogram frozen for serialization: summary stats plus the non-empty
/// log₂ buckets as `(inclusive_upper_bound, count)` pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Non-empty buckets: `(upper bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate quantile `q` from the bucket layout, like
    /// [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(upper, c) in &self.buckets {
            seen += c;
            if seen >= target {
                return upper as f64;
            }
        }
        self.max
    }

    /// Merge another snapshot into this one, bucket-wise.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut merged: BTreeMap<u64, u64> = self.buckets.iter().copied().collect();
        for &(upper, c) in &other.buckets {
            *merged.entry(upper).or_insert(0) += c;
        }
        self.buckets = merged.into_iter().collect();
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

impl From<&Histogram> for HistogramSnapshot {
    fn from(h: &Histogram) -> Self {
        h.snapshot()
    }
}

/// Every metric of one run (or of several merged runs), keyed by name.
/// `BTreeMap`s keep serialization order stable, so the same run always
/// produces the same bytes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotone counters.
    pub counters: BTreeMap<String, u64>,
    /// Gauges (merges keep the maximum across runs).
    pub gauges: BTreeMap<String, f64>,
    /// Histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Fold another run's snapshot into this one: counters and histograms
    /// add, gauges keep the maximum. Addition and max are associative and
    /// commutative, so merging per-repetition snapshots in repetition order
    /// yields the same bytes at any worker count.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(f64::NEG_INFINITY);
            *slot = slot.max(*v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    /// Merge a sequence of snapshots (e.g. one per repetition of a cell).
    pub fn merged(snaps: &[MetricsSnapshot]) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for s in snaps {
            out.merge(s);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(counter: u64, gauge: f64, obs: &[f64]) -> MetricsSnapshot {
        let mut h = Histogram::new();
        for &v in obs {
            h.observe(v);
        }
        let mut s = MetricsSnapshot::default();
        s.counters.insert("c".into(), counter);
        s.gauges.insert("g".into(), gauge);
        s.histograms.insert("h".into(), h.snapshot());
        s
    }

    #[test]
    fn merge_adds_counters_and_maxes_gauges() {
        let mut a = snap(3, 1.0, &[4.0]);
        a.merge(&snap(7, 9.5, &[100.0]));
        assert_eq!(a.counters["c"], 10);
        assert_eq!(a.gauges["g"], 9.5);
        assert_eq!(a.histograms["h"].count, 2);
        assert_eq!(a.histograms["h"].max, 100.0);
    }

    #[test]
    fn merged_is_commutative() {
        let a = snap(1, 2.0, &[1.0, 8.0]);
        let b = snap(5, 1.0, &[300.0]);
        let ab = MetricsSnapshot::merged(&[a.clone(), b.clone()]);
        let ba = MetricsSnapshot::merged(&[b, a]);
        assert_eq!(ab, ba);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let s = snap(42, 3.25, &[1.0, 17.0, 900.0]);
        let json = serde_json::to_string(&s).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
