//! Lightweight self-profiling of the simulator's own hot paths.
//!
//! The fast-path work (calm-skip fleet stepping, the scheduler's O(cores)
//! select) is designed to make the *slow* paths rare; this module measures
//! how rare. Four phases are instrumented with process-wide atomic
//! counters: call counts and total wall-clock nanoseconds per phase. The
//! experiment drivers expose it behind `--profile` and write the totals
//! into the `.meta.json` sidecar next to each artifact — wall-clock lives
//! with the other nondeterministic run metadata, never in the data JSON.
//!
//! **Cost discipline.** When disabled (the default), a [`span`] is one
//! relaxed atomic load and no timestamp. When enabled, it is two
//! `Instant::now` calls and two relaxed atomic adds. Profiling never feeds
//! back into the simulation: no randomness, no allocation on the hot path,
//! and the simulated outputs are byte-identical with it on or off.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Phases instrumented by the profile-guided hot-path pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// The kernel's page-reclaim pass (`MemoryManager::reclaim`).
    KernelReclaim = 0,
    /// A coarse 1 Hz kernel step that could not be calm-skipped.
    CoarseStep = 1,
    /// A scheduler selection that missed the O(cores) fast path.
    SchedSelectSlow = 2,
    /// A fleet user's full (non-quiescent) 1 Hz step.
    FleetSlowStep = 3,
}

/// All phases, in sidecar emission order.
pub const PHASES: [Phase; 4] = [
    Phase::KernelReclaim,
    Phase::CoarseStep,
    Phase::SchedSelectSlow,
    Phase::FleetSlowStep,
];

impl Phase {
    /// Stable sidecar name for the phase.
    pub fn name(self) -> &'static str {
        match self {
            Phase::KernelReclaim => "kernel.reclaim",
            Phase::CoarseStep => "kernel.coarse_step",
            Phase::SchedSelectSlow => "sched.select_slow",
            Phase::FleetSlowStep => "fleet.slow_step",
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static CALLS: [AtomicU64; 4] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];
static NANOS: [AtomicU64; 4] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Whether spans are currently recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on or off (process-wide).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Zero all phase counters.
pub fn reset() {
    for i in 0..PHASES.len() {
        CALLS[i].store(0, Ordering::Relaxed);
        NANOS[i].store(0, Ordering::Relaxed);
    }
}

/// An in-flight phase measurement; records on drop. Hold it for the
/// duration of the instrumented scope:
///
/// ```
/// use mvqoe_metrics::selfprof::{self, Phase};
/// let _prof = selfprof::span(Phase::KernelReclaim);
/// // ... the work being measured ...
/// ```
pub struct Span {
    phase: Phase,
    start: Option<Instant>,
}

/// Start measuring `phase` (no-op unless [`enabled`]).
#[inline]
pub fn span(phase: Phase) -> Span {
    Span {
        phase,
        start: if enabled() { Some(Instant::now()) } else { None },
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos() as u64;
            CALLS[self.phase as usize].fetch_add(1, Ordering::Relaxed);
            NANOS[self.phase as usize].fetch_add(ns, Ordering::Relaxed);
        }
    }
}

/// One phase's totals, as written to the `.meta.json` sidecar.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Stable phase name ([`Phase::name`]).
    pub phase: String,
    /// Times the instrumented scope ran.
    pub calls: u64,
    /// Total wall-clock nanoseconds spent inside it.
    pub total_ns: u64,
}

/// Snapshot every phase (including zero-call ones) in [`PHASES`] order.
pub fn snapshot() -> Vec<PhaseProfile> {
    PHASES
        .iter()
        .map(|&p| PhaseProfile {
            phase: p.name().to_string(),
            calls: CALLS[p as usize].load(Ordering::Relaxed),
            total_ns: NANOS[p as usize].load(Ordering::Relaxed),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test covering both modes: the enable flag and counters are
    /// process-wide, so splitting this across test fns would race under
    /// the parallel test runner.
    #[test]
    fn spans_record_only_while_enabled() {
        set_enabled(false);
        reset();
        {
            let _s = span(Phase::KernelReclaim);
        }
        assert!(snapshot().iter().all(|p| p.calls == 0 && p.total_ns == 0));

        set_enabled(true);
        {
            let _s = span(Phase::CoarseStep);
        }
        {
            let _s = span(Phase::CoarseStep);
        }
        let snap = snapshot();
        set_enabled(false);
        let coarse = snap
            .iter()
            .find(|p| p.phase == "kernel.coarse_step")
            .unwrap();
        assert_eq!(coarse.calls, 2);
        assert_eq!(snap.len(), PHASES.len());
        assert_eq!(snap[0].phase, "kernel.reclaim");
    }
}
