//! The threaded TCP front end: one acceptor thread, one worker thread per
//! connection. A connection's first byte picks its protocol — `{` opens a
//! newline-delimited JSON ingest stream (device reports in, one
//! [`IngestAck`] line back at EOF), anything else is parsed as an HTTP
//! request and routed to `/metrics` or the `/query/*` endpoints.
//!
//! The load is a handful of long-lived ingest streams plus occasional
//! scrapes, so thread-per-connection with `std::net` is the right size —
//! no async runtime exists in the offline build environment anyway.

use crate::http::{read_request, respond, Request, APPLICATION_JSON, PROMETHEUS_TEXT};
use crate::report::{DeviceReport, IngestAck};
use crate::state::ServiceState;
use mvqoe_study::FleetAggregate;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Flush batched per-connection ingest tallies into the registry every
/// this many lines (and at EOF), so the per-sample path stays off the
/// registry lock.
const INGEST_FLUSH_EVERY: u64 = 1024;

/// A running telemetry service.
pub struct TelemetryServer {
    state: Arc<ServiceState>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Bind `127.0.0.1:port` (0 picks an ephemeral port) and start
    /// accepting connections.
    pub fn start(state: ServiceState, port: u16) -> std::io::Result<TelemetryServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let state = Arc::new(state);
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(listener, state, stop))
        };
        Ok(TelemetryServer {
            state,
            addr,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state, for in-process inspection.
    pub fn state(&self) -> &ServiceState {
        &self.state
    }

    /// Stop accepting, join every in-flight connection, and merge the
    /// shards into the final fleet aggregate.
    pub fn shutdown(mut self) -> FleetAggregate {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        drop(TcpStream::connect(self.addr));
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        self.state.finalize()
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServiceState>, stop: Arc<AtomicBool>) {
    let workers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let state = Arc::clone(&state);
        workers
            .lock()
            .unwrap()
            .push(std::thread::spawn(move || handle_connection(stream, state)));
    }
    for h in workers.into_inner().unwrap() {
        let _ = h.join();
    }
}

fn handle_connection(stream: TcpStream, state: Arc<ServiceState>) {
    state.add_connection();
    let mut first = [0u8; 1];
    let Ok(n) = stream.peek(&mut first) else { return };
    let result = if n == 1 && first[0] == b'{' {
        handle_ingest(stream, &state)
    } else {
        handle_http(stream, &state)
    };
    // Peer hangups mid-stream are normal (a killed load generator); there
    // is no one to report the error to, so drop it.
    let _ = result;
}

/// Drain one NDJSON ingest stream, apply every report, and answer with a
/// one-line [`IngestAck`] once the peer half-closes its write side.
fn handle_ingest(stream: TcpStream, state: &ServiceState) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut ack = IngestAck::default();
    let mut pending_ok = 0u64;
    let mut pending_bad = 0u64;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        if line.trim().is_empty() {
            continue;
        }
        let applied = serde_json::from_str::<DeviceReport>(line.trim_end())
            .map_err(|e| e.to_string())
            .and_then(|report| state.apply(&report));
        match applied {
            Ok(folded) => {
                ack.accepted += 1;
                ack.folded += folded as u64;
                pending_ok += 1;
            }
            Err(_) => {
                ack.parse_failures += 1;
                pending_bad += 1;
            }
        }
        if pending_ok + pending_bad >= INGEST_FLUSH_EVERY {
            state.add_ingest(pending_ok, pending_bad);
            pending_ok = 0;
            pending_bad = 0;
        }
    }
    state.add_ingest(pending_ok, pending_bad);
    let mut writer = stream;
    let body = serde_json::to_string(&ack)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::Other, e.to_string()))?;
    writeln!(writer, "{body}")?;
    writer.flush()
}

/// Answer one HTTP request and close.
fn handle_http(stream: TcpStream, state: &ServiceState) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let Some(req) = read_request(&mut reader)? else {
        return Ok(());
    };
    let mut writer = BufWriter::new(stream);
    let started = std::time::Instant::now();
    let endpoint = route(&mut writer, &req, state)?;
    let elapsed_us = started.elapsed().as_micros() as f64;
    state.registry.with(|r| {
        r.add_counter(&format!("telemetryd.http.{endpoint}.requests_total"), 1);
        let h = r.histogram(&format!("telemetryd.http.{endpoint}.latency_us"));
        r.observe(h, elapsed_us);
    });
    Ok(())
}

/// Dispatch one request; returns the endpoint label the latency metrics
/// are filed under.
fn route(writer: &mut impl Write, req: &Request, state: &ServiceState) -> std::io::Result<&'static str> {
    if req.method != "GET" {
        respond(
            writer,
            405,
            "Method Not Allowed",
            APPLICATION_JSON,
            "{\"error\":\"only GET is supported\"}",
        )?;
        return Ok("other");
    }
    match req.route() {
        "/metrics" => {
            let body = state.scrape();
            respond(writer, 200, "OK", PROMETHEUS_TEXT, &body)?;
            Ok("metrics")
        }
        "/query/headline" => {
            let body = json_body(&state.headline())?;
            respond(writer, 200, "OK", APPLICATION_JSON, &body)?;
            Ok("headline")
        }
        "/query/attribution" => {
            let body = json_body(&state.attribution())?;
            respond(writer, 200, "OK", APPLICATION_JSON, &body)?;
            Ok("attribution")
        }
        "/query/topk" => {
            let k = req
                .query("k")
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(5);
            let body = json_body(&state.topk(k))?;
            respond(writer, 200, "OK", APPLICATION_JSON, &body)?;
            Ok("topk")
        }
        path => {
            if let Some(id) = path.strip_prefix("/query/device/") {
                match id.parse::<u32>() {
                    Ok(device) => {
                        let body = json_body(&state.device(device))?;
                        respond(writer, 200, "OK", APPLICATION_JSON, &body)?;
                        return Ok("device");
                    }
                    Err(_) => {
                        respond(
                            writer,
                            400,
                            "Bad Request",
                            APPLICATION_JSON,
                            "{\"error\":\"device id must be a u32\"}",
                        )?;
                        return Ok("other");
                    }
                }
            }
            respond(
                writer,
                404,
                "Not Found",
                APPLICATION_JSON,
                "{\"error\":\"no such endpoint\"}",
            )?;
            Ok("other")
        }
    }
}

fn json_body<T: serde::Serialize>(value: &T) -> std::io::Result<String> {
    serde_json::to_string(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::Other, e.to_string()))
}
