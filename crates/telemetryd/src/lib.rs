//! Live fleet telemetry backend for the §3 study at provider scale.
//!
//! The batch engine (`mvqoe-study`) simulates the fleet and folds it into
//! a [`mvqoe_study::FleetAggregate`] in one process. This crate moves the
//! fold behind a wire: a threaded TCP service ingests newline-delimited
//! JSON device reports ([`DeviceReport`] — 1 Hz memory samples from fleet
//! devices, 1 Hz QoE reports from live video sessions), folds them online
//! into a sharded aggregate ring, and serves
//!
//! * `GET /metrics` — Prometheus text exposition of the full
//!   [`mvqoe_metrics`] registry (fleet counters plus the service's own
//!   ingest/query instrumentation),
//! * `GET /query/headline` — live recruited/kept/hours/in-flight counts,
//! * `GET /query/topk?k=N` — the highest-pressure devices so far,
//! * `GET /query/device/<id>` — one device's live status or folded digest,
//! * `GET /query/attribution` — the fleet-wide blame ledger: rebuffer
//!   time and dropped frames per kernel/network cause.
//!
//! The aggregate's merge algebra is associative and order-insensitive over
//! disjoint device sets, so the service's final aggregate is byte-identical
//! to the batch engine's — the invariant `tests/service.rs` and the
//! `exp-serve` experiment pin.
//!
//! Everything is `std`-only (`std::net` + worker threads, hand-rolled
//! HTTP/1.1): the build environment is offline, and the load — a few
//! long-lived ingest streams plus scrapes — doesn't need more.

pub mod http;
pub mod loadgen;
pub mod report;
pub mod server;
pub mod state;

pub use loadgen::{run_fleet_loadgen, run_session_loadgen};
pub use report::{DeviceReport, IngestAck};
pub use server::TelemetryServer;
pub use state::{AttributionEntry, AttributionView, DeviceStatus, Headline, ServiceState, TopEntry};
