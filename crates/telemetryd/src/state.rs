//! The service's shared state: a ring of mutex-guarded fleet-aggregate
//! shards keyed by device id, plus the metrics registry the service both
//! publishes and instruments itself with.
//!
//! Each shard holds the in-flight observations of its devices and a
//! [`FleetAggregate`] they fold into on `End`. The aggregate's merge
//! algebra is associative and order-insensitive over disjoint device
//! sets, so [`ServiceState::finalize`] — merging the shard aggregates in
//! ring order — is byte-identical to the batch engine's serial fold no
//! matter how connections interleaved or how many shards the ring has.

use crate::report::DeviceReport;
use mvqoe_core::Cause;
use mvqoe_metrics::{prometheus, CounterId, GaugeId, HistogramId, SharedRegistry};
use mvqoe_study::{DeviceDigest, DeviceObservation, FleetAggregate, FleetConfig};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Mutex;

/// In-flight device observation: samples recorded, not yet folded.
struct Pending {
    obs: DeviceObservation,
    hours: f64,
}

#[derive(Default)]
struct Shard {
    agg: FleetAggregate,
    active: HashMap<u32, Pending>,
}

impl Shard {
    /// Whether `device` has already been folded into this shard.
    fn folded(&self, device: u32) -> bool {
        self.agg
            .hours
            .binary_search_by_key(&device, |&(i, _)| i)
            .is_ok()
    }
}

/// Pre-registered ids for the service's own health metrics.
struct ServiceIds {
    reports: CounterId,
    parse_failures: CounterId,
    connections: CounterId,
    devices_completed: CounterId,
    fold_us: HistogramId,
    queue_depth: GaugeId,
    qoe_reports: CounterId,
    qoe_frames_rendered: CounterId,
    qoe_kills: CounterId,
    qoe_rebuffer_seconds: CounterId,
    qoe_buffer_s: HistogramId,
}

/// Shared state behind every connection handler.
pub struct ServiceState {
    /// The fleet protocol the ingested devices were generated under.
    pub cfg: FleetConfig,
    shards: Vec<Mutex<Shard>>,
    /// The registry `GET /metrics` exposes; the service's own counters
    /// live here alongside the fleet QoE counters.
    pub registry: SharedRegistry,
    ids: ServiceIds,
}

/// The live `/query/headline` view: exact integer counts, plus a
/// total-hours sum taken shard-by-shard in ring order (the batch engine
/// sums in user order, so the two can differ in the last f64 bits while
/// devices are still arriving; [`ServiceState::finalize`] is exact).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Headline {
    /// Devices folded so far (recruited, before cleaning).
    pub recruited: u32,
    /// Devices that passed the cleaning rule.
    pub kept: u64,
    /// Logged hours across folded devices.
    pub total_hours: f64,
    /// Observations open right now.
    pub devices_in_flight: u64,
    /// Reports applied since startup.
    pub reports_total: u64,
    /// Lines rejected since startup.
    pub parse_failures_total: u64,
    /// Session QoE reports folded since startup.
    pub qoe_reports_total: u64,
}

/// One `/query/topk` entry (the digest scalars, without Fig. 5's
/// histograms — those stay queryable per device).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopEntry {
    /// Device id.
    pub device: u32,
    /// Device model name.
    pub name: String,
    /// RAM in MiB.
    pub ram_mib: u64,
    /// Fraction of time out of Normal (the ranking key).
    pub pressure_time_fraction: f64,
}

/// The `/query/device/<id>` view.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceStatus {
    /// Device id.
    pub device: u32,
    /// `"in-flight"`, `"kept"`, `"cleaned"`, `"truncated"`, or `"unknown"`.
    pub state: String,
    /// Hours recorded so far (in-flight devices only).
    pub hours_so_far: Option<f64>,
    /// The folded digest (kept devices under the digest cap).
    pub digest: Option<DeviceDigest>,
}

/// One cause's row in the `/query/attribution` view.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttributionEntry {
    /// The cause's snake_case label (e.g. `"lmkd_kill"`).
    pub cause: String,
    /// Rebuffer microseconds blamed on this cause across the fleet.
    pub rebuffer_us: u64,
    /// Dropped frames blamed on this cause across the fleet.
    pub drops: u64,
}

/// The `/query/attribution` view: the fleet-wide blame ledger, exact
/// integer totals summed across shards, plus the headline memory-vs-
/// network split of rebuffer time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttributionView {
    /// One entry per cause, in [`Cause::ALL`] order.
    pub causes: Vec<AttributionEntry>,
    /// Total attributed rebuffer microseconds (sum of per-cause rows).
    pub total_rebuffer_us: u64,
    /// Total attributed dropped frames.
    pub total_drops: u64,
    /// Share of rebuffer time blamed on memory-pressure causes.
    pub memory_rebuffer_share: f64,
    /// Share of rebuffer time blamed on network causes.
    pub network_rebuffer_share: f64,
}

impl ServiceState {
    /// Build service state with `n_shards` aggregate shards.
    pub fn new(cfg: FleetConfig, n_shards: u32, registry: SharedRegistry) -> ServiceState {
        let ids = registry.with(|r| ServiceIds {
            reports: r.counter("telemetryd.reports_total"),
            parse_failures: r.counter("telemetryd.parse_failures_total"),
            connections: r.counter("telemetryd.connections_total"),
            devices_completed: r.counter("telemetryd.devices_completed_total"),
            fold_us: r.histogram("telemetryd.fold_latency_us"),
            queue_depth: r.gauge("telemetryd.queue_depth"),
            qoe_reports: r.counter("fleet.qoe.reports_total"),
            qoe_frames_rendered: r.counter("fleet.qoe.frames_rendered_total"),
            qoe_kills: r.counter("fleet.qoe.kills_total"),
            qoe_rebuffer_seconds: r.counter("fleet.qoe.rebuffer_seconds_total"),
            qoe_buffer_s: r.histogram("fleet.qoe.buffer_s"),
        });
        ServiceState {
            cfg,
            shards: (0..n_shards.max(1)).map(|_| Mutex::new(Shard::default())).collect(),
            registry,
            ids,
        }
    }

    fn shard(&self, device: u32) -> &Mutex<Shard> {
        &self.shards[device as usize % self.shards.len()]
    }

    /// Apply one report. Returns `true` when the report completed a device
    /// (an `End` that folded). Protocol violations — samples for unknown
    /// devices, duplicate `Begin`s, re-folding a folded device — come back
    /// as `Err` and count as parse failures at the connection layer.
    pub fn apply(&self, report: &DeviceReport) -> Result<bool, String> {
        match report {
            DeviceReport::Begin {
                device,
                name,
                manufacturer,
                ram_mib,
                pattern,
                hours,
            } => {
                let mut shard = self.shard(*device).lock().unwrap();
                if shard.folded(*device) {
                    return Err(format!("device {device} already folded"));
                }
                if shard.active.contains_key(device) {
                    return Err(format!("device {device} already in flight"));
                }
                shard.active.insert(
                    *device,
                    Pending {
                        obs: DeviceObservation::new(
                            name.clone(),
                            manufacturer.clone(),
                            *ram_mib,
                            *pattern,
                        ),
                        hours: *hours,
                    },
                );
                Ok(false)
            }
            DeviceReport::Sample { device, sample } => {
                let mut shard = self.shard(*device).lock().unwrap();
                match shard.active.get_mut(device) {
                    Some(p) => {
                        p.obs.record(sample);
                        Ok(false)
                    }
                    None => Err(format!("sample for unknown device {device}")),
                }
            }
            DeviceReport::End { device } => {
                let mut shard = self.shard(*device).lock().unwrap();
                let Pending { obs, hours } = shard
                    .active
                    .remove(device)
                    .ok_or_else(|| format!("end for unknown device {device}"))?;
                let start = std::time::Instant::now();
                shard.agg.fold_unordered(&self.cfg, *device, &obs, hours);
                let fold_us = start.elapsed().as_micros() as f64;
                drop(shard);
                self.registry.with(|r| {
                    r.inc(self.ids.devices_completed, 1);
                    r.observe(self.ids.fold_us, fold_us);
                    r.set(self.ids.queue_depth, self.in_flight() as f64);
                });
                Ok(true)
            }
            DeviceReport::Qoe { report, .. } => {
                self.registry.with(|r| {
                    r.inc(self.ids.qoe_reports, 1);
                    r.inc(self.ids.qoe_frames_rendered, report.rendered as u64);
                    r.inc(self.ids.qoe_kills, report.kills as u64);
                    r.inc(self.ids.qoe_rebuffer_seconds, report.rebuffering as u64);
                    r.observe(self.ids.qoe_buffer_s, report.buffer_s);
                });
                Ok(false)
            }
            DeviceReport::Attribution { device, report } => {
                {
                    let mut shard = self.shard(*device).lock().unwrap();
                    shard
                        .agg
                        .absorb_attribution(&report.rebuffer_us, &report.drops);
                }
                // Per-cause counters are registered lazily, on the first
                // attribution report — never in `ServiceState::new` — so a
                // service that ingests no attribution exposes a scrape
                // byte-identical to one built before attribution existed.
                self.registry.with(|r| {
                    for cause in Cause::ALL {
                        let i = cause.index();
                        let rb = report.rebuffer_us.get(i).copied().unwrap_or(0);
                        if rb > 0 {
                            r.add_counter(
                                &format!("fleet.attr.rebuffer_us_total.{}", cause.label()),
                                rb,
                            );
                        }
                        let dr = report.drops.get(i).copied().unwrap_or(0);
                        if dr > 0 {
                            r.add_counter(
                                &format!("fleet.attr.drops_total.{}", cause.label()),
                                dr,
                            );
                        }
                    }
                });
                Ok(false)
            }
        }
    }

    /// Fold a connection's batched ingest tallies into the registry —
    /// called every flush interval, not per line, so the sample hot path
    /// touches only its shard lock.
    pub fn add_ingest(&self, reports: u64, parse_failures: u64) {
        if reports == 0 && parse_failures == 0 {
            return;
        }
        self.registry.with(|r| {
            r.inc(self.ids.reports, reports);
            r.inc(self.ids.parse_failures, parse_failures);
        });
    }

    /// Count one handled connection.
    pub fn add_connection(&self) {
        self.registry.with(|r| r.inc(self.ids.connections, 1));
    }

    /// Observations open across all shards.
    pub fn in_flight(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().active.len() as u64)
            .sum()
    }

    /// The live headline view.
    pub fn headline(&self) -> Headline {
        let mut recruited = 0u32;
        let mut kept = 0u64;
        let mut total_hours = 0.0f64;
        let mut in_flight = 0u64;
        for shard in &self.shards {
            let shard = shard.lock().unwrap();
            recruited += shard.agg.recruited;
            kept += shard.agg.kept;
            total_hours += shard.agg.total_hours();
            in_flight += shard.active.len() as u64;
        }
        let (reports_total, parse_failures_total, qoe_reports_total) = self.registry.with(|r| {
            (
                r.counter_value("telemetryd.reports_total").unwrap_or(0),
                r.counter_value("telemetryd.parse_failures_total").unwrap_or(0),
                r.counter_value("fleet.qoe.reports_total").unwrap_or(0),
            )
        });
        Headline {
            recruited,
            kept,
            total_hours,
            devices_in_flight: in_flight,
            reports_total,
            parse_failures_total,
            qoe_reports_total,
        }
    }

    /// The `k` highest-pressure folded devices, highest fraction first,
    /// ties to the lower device id — the aggregate's own top-K order.
    pub fn topk(&self, k: usize) -> Vec<TopEntry> {
        let mut all: Vec<TopEntry> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap();
            all.extend(shard.agg.top.iter().map(|t| TopEntry {
                device: t.idx,
                name: t.name.clone(),
                ram_mib: t.ram_mib,
                pressure_time_fraction: t.pressure_time_fraction,
            }));
        }
        all.sort_by(|a, b| {
            b.pressure_time_fraction
                .partial_cmp(&a.pressure_time_fraction)
                .expect("NaN pressure fraction")
                .then(a.device.cmp(&b.device))
        });
        all.truncate(k);
        all
    }

    /// The live blame ledger: per-cause rebuffer/drop totals summed across
    /// shards (exact integer adds, so order-insensitive), with the
    /// memory-vs-network rebuffer split computed over attributed time.
    pub fn attribution(&self) -> AttributionView {
        let mut rebuffer_us = vec![0u64; Cause::ALL.len()];
        let mut drops = vec![0u64; Cause::ALL.len()];
        for shard in &self.shards {
            let shard = shard.lock().unwrap();
            for (i, &v) in shard.agg.attr_rebuffer_us.iter().enumerate() {
                rebuffer_us[i] += v;
            }
            for (i, &v) in shard.agg.attr_drops.iter().enumerate() {
                drops[i] += v;
            }
        }
        let total_rebuffer_us: u64 = rebuffer_us.iter().sum();
        let total_drops: u64 = drops.iter().sum();
        let share = |pred: fn(Cause) -> bool| {
            if total_rebuffer_us == 0 {
                return 0.0;
            }
            let us: u64 = Cause::ALL
                .iter()
                .filter(|c| pred(**c))
                .map(|c| rebuffer_us[c.index()])
                .sum();
            us as f64 / total_rebuffer_us as f64
        };
        AttributionView {
            causes: Cause::ALL
                .iter()
                .map(|c| AttributionEntry {
                    cause: c.label().to_string(),
                    rebuffer_us: rebuffer_us[c.index()],
                    drops: drops[c.index()],
                })
                .collect(),
            total_rebuffer_us,
            total_drops,
            memory_rebuffer_share: share(Cause::is_memory),
            network_rebuffer_share: share(Cause::is_network),
        }
    }

    /// Live status of one device.
    pub fn device(&self, device: u32) -> DeviceStatus {
        let shard = self.shard(device).lock().unwrap();
        if let Some(p) = shard.active.get(&device) {
            return DeviceStatus {
                device,
                state: "in-flight".into(),
                hours_so_far: Some(p.obs.total_hours),
                digest: None,
            };
        }
        if !shard.folded(device) {
            return DeviceStatus {
                device,
                state: "unknown".into(),
                hours_so_far: None,
                digest: None,
            };
        }
        match shard.agg.digests.binary_search_by_key(&device, |d| d.idx) {
            Ok(i) => DeviceStatus {
                device,
                state: "kept".into(),
                hours_so_far: None,
                digest: Some(shard.agg.digests[i].clone()),
            },
            // Folded but digest-less: cleaned out by the interactivity
            // rule, or past the digest cap.
            Err(_) if shard.agg.digests_complete() => DeviceStatus {
                device,
                state: "cleaned".into(),
                hours_so_far: None,
                digest: None,
            },
            Err(_) => DeviceStatus {
                device,
                state: "truncated".into(),
                hours_so_far: None,
                digest: None,
            },
        }
    }

    /// Refresh scrape-time gauges and encode the full registry as
    /// Prometheus text exposition.
    pub fn scrape(&self) -> String {
        let h = self.headline();
        self.registry.with(|r| {
            r.set(self.ids.queue_depth, h.devices_in_flight as f64);
            r.set_gauge("fleet.recruited", h.recruited as f64);
            r.set_gauge("fleet.kept", h.kept as f64);
            r.set_gauge("fleet.logged_hours", h.total_hours);
        });
        prometheus::encode(&self.registry.snapshot())
    }

    /// Merge the shard aggregates (ring order) into the final fleet
    /// aggregate — byte-identical to the batch engine's serial fold over
    /// the same devices. Panics if observations are still in flight.
    pub fn finalize(&self) -> FleetAggregate {
        let mut out = FleetAggregate::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap();
            assert!(
                shard.active.is_empty(),
                "finalize with {} observation(s) still in flight",
                shard.active.len()
            );
            out.merge(&shard.agg);
        }
        out
    }

    /// Number of shards in the ring.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }
}
