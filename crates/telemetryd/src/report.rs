//! The ingest wire format: newline-delimited JSON device reports.
//!
//! A device's upload is a stream of [`DeviceReport`] lines — a `Begin`
//! announcing the device, its 1 Hz `Sample`s, and an `End` closing the
//! observation window — plus `Qoe` lines from live video sessions. The
//! server replays `Sample`s through [`mvqoe_study::DeviceObservation`],
//! which is a pure function of the sample stream, and JSON round-trips
//! `f64` bit-exactly, so an uploaded observation folds byte-identically
//! to one computed on-device.

use mvqoe_core::{AttributionReport, QoeReport};
use mvqoe_workload::{FleetSample, UsagePattern};
use serde::{Deserialize, Serialize};

/// One newline-delimited ingest record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum DeviceReport {
    /// A fleet device comes online: everything the server needs to open
    /// its observation without re-deriving the device locally.
    Begin {
        /// Fleet user index (the device id).
        device: u32,
        /// Device model name.
        name: String,
        /// Manufacturer.
        manufacturer: String,
        /// RAM in MiB.
        ram_mib: u64,
        /// The user's survey answers.
        pattern: UsagePattern,
        /// Observation length in hours.
        hours: f64,
    },
    /// One 1 Hz memory/state sample from an open observation.
    Sample {
        /// Fleet user index.
        device: u32,
        /// The sample.
        sample: FleetSample,
    },
    /// The device's observation window closed; fold it into the fleet.
    End {
        /// Fleet user index.
        device: u32,
    },
    /// One 1 Hz QoE report from a live video session.
    Qoe {
        /// Device id of the session's phone (its own id space; session
        /// devices never collide with fleet user indices).
        device: u32,
        /// The report.
        report: QoeReport,
    },
    /// A finished session's causal attribution report: every rebuffer
    /// microsecond and dropped frame blamed on its kernel or network
    /// cause.
    Attribution {
        /// Device id of the session's phone (same id space as `Qoe`).
        device: u32,
        /// The report.
        report: AttributionReport,
    },
}

impl DeviceReport {
    /// The device id this report concerns.
    pub fn device(&self) -> u32 {
        match *self {
            DeviceReport::Begin { device, .. }
            | DeviceReport::Sample { device, .. }
            | DeviceReport::End { device }
            | DeviceReport::Qoe { device, .. }
            | DeviceReport::Attribution { device, .. } => device,
        }
    }
}

/// The one-line JSON ack the server writes after an ingest stream hits
/// EOF, so load generators know their upload was fully folded before the
/// connection closes.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct IngestAck {
    /// Reports applied successfully.
    pub accepted: u64,
    /// Devices folded into the fleet aggregate by this connection.
    pub folded: u64,
    /// Lines that failed to parse or violated the protocol.
    pub parse_failures: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_round_trip_through_ndjson() {
        let begin = DeviceReport::Begin {
            device: 7,
            name: "Nokia 1".into(),
            manufacturer: "HMD Global".into(),
            ram_mib: 1024,
            pattern: UsagePattern {
                games: 2.0,
                music: 3.0,
                videos: 4.5,
                multitask_1: 4.0,
                multitask_2: 3.0,
                interactive_frac: 0.25,
            },
            hours: 16.25,
        };
        let line = serde_json::to_string(&begin).unwrap();
        assert!(!line.contains('\n'), "one report must stay one line");
        let back: DeviceReport = serde_json::from_str(&line).unwrap();
        assert_eq!(back.device(), 7);
        match back {
            DeviceReport::Begin { hours, .. } => assert_eq!(hours, 16.25),
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
