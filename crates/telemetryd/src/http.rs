//! A hand-rolled, minimal HTTP/1.1 layer — the build environment is
//! offline, so there is no async runtime or HTTP crate to lean on. The
//! server only ever answers small GET requests and closes the connection
//! after each response, which keeps this to a request-line parser and a
//! response writer.

use std::io::{BufRead, Write};

/// The parsed request line (headers are drained and discarded — no
/// endpoint needs them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method token, e.g. `GET`.
    pub method: String,
    /// The request target, e.g. `/query/topk?k=5`.
    pub path: String,
}

impl Request {
    /// The path without its query string.
    pub fn route(&self) -> &str {
        self.path.split('?').next().unwrap_or(&self.path)
    }

    /// The value of query parameter `key`, if present.
    pub fn query(&self, key: &str) -> Option<&str> {
        let qs = self.path.split_once('?')?.1;
        qs.split('&')
            .filter_map(|kv| kv.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }
}

/// Read one HTTP request head off `reader`: parse the request line, drain
/// headers to the blank line. `Ok(None)` means the peer closed before
/// sending anything.
pub fn read_request(reader: &mut impl BufRead) -> std::io::Result<Option<Request>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed request line: {line:?}"),
            ))
        }
    };
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    Ok(Some(Request { method, path }))
}

/// Write a complete HTTP/1.1 response and flush. Always `Connection:
/// close` — the load is scrape- and query-shaped, keep-alive buys nothing
/// worth the state.
pub fn respond(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// JSON content type for the query endpoints.
pub const APPLICATION_JSON: &str = "application/json";
/// The Prometheus text exposition content type for `GET /metrics`.
pub const PROMETHEUS_TEXT: &str = "text/plain; version=0.0.4; charset=utf-8";

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_request_line_and_query_params() {
        let raw = b"GET /query/topk?k=5&x=1 HTTP/1.1\r\nHost: localhost\r\nAccept: */*\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..]))
            .unwrap()
            .expect("a request");
        assert_eq!(req.method, "GET");
        assert_eq!(req.route(), "/query/topk");
        assert_eq!(req.query("k"), Some("5"));
        assert_eq!(req.query("x"), Some("1"));
        assert_eq!(req.query("missing"), None);

        let plain = Request {
            method: "GET".into(),
            path: "/metrics".into(),
        };
        assert_eq!(plain.route(), "/metrics");
        assert_eq!(plain.query("k"), None);
    }

    #[test]
    fn empty_stream_is_a_clean_none() {
        let raw: &[u8] = b"";
        assert!(read_request(&mut BufReader::new(raw)).unwrap().is_none());
    }

    #[test]
    fn responses_carry_content_length_and_close() {
        let mut out = Vec::new();
        respond(&mut out, 200, "OK", APPLICATION_JSON, "{\"ok\":true}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }
}
