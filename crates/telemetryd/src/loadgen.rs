//! Load-generator modes of the simulation engines: drive the fleet and
//! session simulators and upload their 1 Hz output as newline-delimited
//! JSON device reports, exactly as a phone-side agent would. The fleet
//! generator replays the same coordinate-derived seeds as the batch
//! engine (`start_user` + `step_1s`), so a service that ingests its
//! stream must fold to a byte-identical [`mvqoe_study::FleetAggregate`].

use crate::report::{DeviceReport, IngestAck};
use mvqoe_abr::BufferBased;
use mvqoe_core::{Session, SessionConfig};
use mvqoe_sim::SimTime;
use mvqoe_study::{start_user, FleetConfig};
use mvqoe_video::Fps;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::ops::Range;

fn io_err(e: impl ToString) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::Other, e.to_string())
}

/// Open an ingest connection, run `upload` against its buffered write
/// half, then half-close and wait for the server's [`IngestAck`] line.
fn with_ingest_stream(
    addr: SocketAddr,
    upload: impl FnOnce(&mut BufWriter<&TcpStream>) -> std::io::Result<()>,
) -> std::io::Result<IngestAck> {
    let stream = TcpStream::connect(addr)?;
    {
        // 64 KiB of buffering keeps the 1 Hz sample lines off the syscall
        // path; one flush per upload.
        let mut writer = BufWriter::with_capacity(64 * 1024, &stream);
        upload(&mut writer)?;
        writer.flush()?;
    }
    stream.shutdown(Shutdown::Write)?;
    let mut ack_line = String::new();
    BufReader::new(&stream).read_line(&mut ack_line)?;
    serde_json::from_str(ack_line.trim_end()).map_err(io_err)
}

fn write_report(
    writer: &mut BufWriter<&TcpStream>,
    report: &DeviceReport,
) -> std::io::Result<()> {
    let line = serde_json::to_string(report).map_err(io_err)?;
    writeln!(writer, "{line}")
}

/// Simulate fleet users `users` under `cfg` and upload each as a
/// `Begin` / 1 Hz `Sample` stream / `End` sequence over one connection.
/// Returns the server's ack once everything uploaded is folded.
pub fn run_fleet_loadgen(
    addr: SocketAddr,
    cfg: &FleetConfig,
    users: Range<u32>,
) -> std::io::Result<IngestAck> {
    with_ingest_stream(addr, |writer| {
        for i in users {
            let mut st = start_user(cfg, i);
            write_report(
                writer,
                &DeviceReport::Begin {
                    device: i,
                    name: st.user.device.name.clone(),
                    manufacturer: st.user.device.manufacturer.clone(),
                    ram_mib: st.user.device.ram_mib,
                    pattern: st.user.pattern,
                    hours: st.hours,
                },
            )?;
            for s in 0..st.seconds() {
                let sample = st.user.step_1s(SimTime::from_secs(s));
                write_report(writer, &DeviceReport::Sample { device: i, sample })?;
            }
            write_report(writer, &DeviceReport::End { device: i })?;
        }
        Ok(())
    })
}

/// Run one live video session (buffer-based ABR over the paper-default
/// config) and upload its 1 Hz QoE reports as they are emitted.
pub fn run_session_loadgen(
    addr: SocketAddr,
    mut cfg: SessionConfig,
    device_id: u32,
) -> std::io::Result<IngestAck> {
    cfg.record_trace = false;
    with_ingest_stream(addr, |writer| {
        let mut session = Session::start(cfg);
        let mut abr = BufferBased::new(Fps::F30);
        let mut upload_err = None;
        let mut sink = |report: &mvqoe_core::QoeReport| {
            if upload_err.is_some() {
                return;
            }
            let line = DeviceReport::Qoe {
                device: device_id,
                report: *report,
            };
            if let Err(e) = write_report(writer, &line) {
                upload_err = Some(e);
            }
        };
        session.run_until_with_sink(&mut abr, SimTime::MAX, None, &mut sink);
        session.finish(None);
        match upload_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    })
}
