//! End-to-end service tests over real loopback sockets: concurrent
//! interleaved ingest folds byte-identically to the batch engine, the
//! query endpoints answer live, and `/metrics` is valid Prometheus text.

use mvqoe_metrics::{prometheus, SharedRegistry};
use mvqoe_study::{simulate_range, FleetConfig};
use mvqoe_telemetryd::{
    run_fleet_loadgen, run_session_loadgen, Headline, ServiceState, TelemetryServer, TopEntry,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A fleet small and short enough to simulate twice in a test, with a
/// cleaning threshold low enough that most devices are kept.
fn short_cfg(n_users: u32) -> FleetConfig {
    let median = 0.05; // 3 minutes of 1 Hz samples per median device
    FleetConfig::scaled(n_users, 2077, median, median * 0.1)
}

fn start_server(cfg: &FleetConfig, n_shards: u32) -> TelemetryServer {
    let state = ServiceState::new(cfg.clone(), n_shards, SharedRegistry::new());
    TelemetryServer::start(state, 0).expect("bind loopback")
}

fn json<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).expect("serialize")
}

/// Minimal HTTP GET: returns (status line, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").expect("write");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let status = raw.lines().next().unwrap_or_default().to_string();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn concurrent_interleaved_ingest_matches_the_batch_fold() {
    let cfg = short_cfg(12);
    let server = start_server(&cfg, 3);
    let addr = server.addr();

    // Three connections upload interleaved, non-contiguous user ranges
    // concurrently — the worst case for fold ordering.
    let ranges = [[0u32, 4], [4, 8], [8, 12]];
    let handles: Vec<_> = ranges
        .into_iter()
        .map(|[lo, hi]| {
            let cfg = cfg.clone();
            std::thread::spawn(move || run_fleet_loadgen(addr, &cfg, lo..hi).expect("upload"))
        })
        .collect();
    let mut folded = 0;
    for h in handles {
        let ack = h.join().expect("loadgen thread");
        assert_eq!(ack.parse_failures, 0);
        folded += ack.folded;
    }
    assert_eq!(folded, 12);

    let served = server.shutdown();
    let batch = simulate_range(&cfg, 0..12);
    assert_eq!(
        json(&served),
        json(&batch),
        "service fold must be byte-identical to the batch engine"
    );
}

#[test]
fn query_endpoints_answer_live_state() {
    let cfg = short_cfg(6);
    let server = start_server(&cfg, 2);
    let addr = server.addr();
    run_fleet_loadgen(addr, &cfg, 0..6).expect("upload");

    let (status, body) = http_get(addr, "/query/headline");
    assert!(status.contains("200"), "{status}");
    let headline: Headline = serde_json::from_str(&body).expect("headline JSON");
    assert_eq!(headline.recruited, 6);
    assert_eq!(headline.devices_in_flight, 0);
    assert!(headline.reports_total > 6, "samples should dominate");
    assert_eq!(headline.parse_failures_total, 0);

    let (status, body) = http_get(addr, "/query/topk?k=3");
    assert!(status.contains("200"), "{status}");
    let top: Vec<TopEntry> = serde_json::from_str(&body).expect("topk JSON");
    assert!(top.len() <= 3 && !top.is_empty());
    assert!(
        top.windows(2)
            .all(|w| w[0].pressure_time_fraction >= w[1].pressure_time_fraction),
        "topk must come back highest pressure first"
    );

    let (status, body) = http_get(addr, "/query/device/0");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"device\":0"), "{body}");

    let (status, body) = http_get(addr, "/query/device/999");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("unknown"), "{body}");

    let (status, _) = http_get(addr, "/nope");
    assert!(status.contains("404"), "{status}");

    server.shutdown();
}

#[test]
fn metrics_endpoint_serves_valid_prometheus_text() {
    let cfg = short_cfg(4);
    let server = start_server(&cfg, 2);
    let addr = server.addr();
    run_fleet_loadgen(addr, &cfg, 0..4).expect("upload");

    let (status, body) = http_get(addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    let stats = prometheus::validate(&body).expect("exposition must validate");
    assert!(stats.families >= 5, "expected several families: {stats:?}");
    assert!(body.contains("fleet_recruited 4"), "{body}");
    assert!(
        body.contains("telemetryd_fold_latency_us_count 4"),
        "one fold per device: {body}"
    );
    server.shutdown();
}

#[test]
fn malformed_and_protocol_violating_lines_count_as_parse_failures() {
    let cfg = short_cfg(2);
    let server = start_server(&cfg, 1);
    let addr = server.addr();

    let stream = TcpStream::connect(addr).expect("connect");
    let mut w = &stream;
    // Not JSON; valid JSON but not a DeviceReport; a sample for a device
    // that never began.
    writeln!(w, "{{not json").expect("write");
    writeln!(w, "{{\"Unknown\":{{}}}}").expect("write");
    writeln!(
        w,
        "{{\"End\":{{\"device\":7}}}}"
    )
    .expect("write");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut ack = String::new();
    (&stream).read_to_string(&mut ack).expect("ack");
    let ack: mvqoe_telemetryd::IngestAck =
        serde_json::from_str(ack.trim_end()).expect("ack JSON");
    assert_eq!(ack.accepted, 0);
    assert_eq!(ack.parse_failures, 3);

    let (_, body) = http_get(addr, "/query/headline");
    let headline: Headline = serde_json::from_str(&body).expect("headline JSON");
    assert_eq!(headline.parse_failures_total, 3);
    assert_eq!(headline.recruited, 0);
    server.shutdown();
}

#[test]
fn attribution_reports_fold_into_the_blame_ledger() {
    use mvqoe_core::{AttributionReport, Cause};
    use mvqoe_telemetryd::AttributionView;

    let cfg = short_cfg(2);
    let server = start_server(&cfg, 2);
    let addr = server.addr();

    // Before any attribution arrives: the view is all zeros and the scrape
    // carries no attribution families at all (lazy registration keeps an
    // attribution-free service byte-compatible with older scrapes).
    let (status, body) = http_get(addr, "/query/attribution");
    assert!(status.contains("200"), "{status}");
    let view: AttributionView = serde_json::from_str(&body).expect("attribution JSON");
    assert_eq!(view.total_rebuffer_us, 0);
    assert_eq!(view.memory_rebuffer_share, 0.0);
    let (_, scrape) = http_get(addr, "/metrics");
    assert!(!scrape.contains("fleet_attr"), "no attribution families yet");

    // Two sessions upload blame ledgers: 3 s of rebuffer on lmkd, 1 s on
    // the network, a handful of decoder-overload drops.
    let mut a = AttributionReport::empty();
    a.rebuffer_us[Cause::LmkdKill.index()] = 2_000_000;
    a.drops[Cause::DecoderOverload.index()] = 5;
    let mut b = AttributionReport::empty();
    b.rebuffer_us[Cause::LmkdKill.index()] = 1_000_000;
    b.rebuffer_us[Cause::NetworkDip.index()] = 1_000_000;
    b.drops[Cause::Unattributed.index()] = 2;
    let stream = TcpStream::connect(addr).expect("connect");
    let mut w = &stream;
    for (device, rep) in [(0u32, &a), (1u32, &b)] {
        let line = json(&mvqoe_telemetryd::DeviceReport::Attribution {
            device,
            report: rep.clone(),
        });
        writeln!(w, "{line}").expect("write");
    }
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut ack = String::new();
    (&stream).read_to_string(&mut ack).expect("ack");
    let ack: mvqoe_telemetryd::IngestAck =
        serde_json::from_str(ack.trim_end()).expect("ack JSON");
    assert_eq!(ack.accepted, 2);

    let (_, body) = http_get(addr, "/query/attribution");
    let view: AttributionView = serde_json::from_str(&body).expect("attribution JSON");
    assert_eq!(view.total_rebuffer_us, 4_000_000);
    assert_eq!(view.total_drops, 7);
    assert_eq!(view.memory_rebuffer_share, 0.75);
    assert_eq!(view.network_rebuffer_share, 0.25);
    let lmkd = view
        .causes
        .iter()
        .find(|e| e.cause == "lmkd_kill")
        .expect("lmkd row");
    assert_eq!(lmkd.rebuffer_us, 3_000_000);

    let (_, scrape) = http_get(addr, "/metrics");
    assert!(
        scrape.contains("fleet_attr_rebuffer_us_total_lmkd_kill 3000000"),
        "{scrape}"
    );
    assert!(
        scrape.contains("fleet_attr_drops_total_decoder_overload 5"),
        "{scrape}"
    );
    server.shutdown();
}

#[test]
fn live_session_qoe_reports_land_in_the_registry() {
    use mvqoe_core::{PressureMode, SessionConfig};
    use mvqoe_device::DeviceProfile;

    let cfg = short_cfg(2);
    let server = start_server(&cfg, 1);
    let addr = server.addr();

    let mut session_cfg =
        SessionConfig::paper_default(DeviceProfile::nexus5(), PressureMode::None, 11);
    session_cfg.video_secs = 10.0;
    let ack = run_session_loadgen(addr, session_cfg, 1_000_000).expect("session upload");
    assert!(ack.accepted >= 8, "expected ~1 Hz reports, got {ack:?}");
    assert_eq!(ack.parse_failures, 0);
    assert_eq!(ack.folded, 0, "QoE reports never fold fleet devices");

    let qoe_reports = server
        .state()
        .registry
        .with(|r| r.counter_value("fleet.qoe.reports_total"))
        .expect("counter registered");
    assert_eq!(qoe_reports, ack.accepted);
    server.shutdown();
}
