//! Property tests: every ABR decision stays inside the manifest's ladder
//! and respects the screen cap, whatever the context.

use mvqoe_abr::{Abr, AbrContext, Bola, BufferBased, FixedAbr, Hybrid, MemoryAware, Mpc, ThroughputBased};
use mvqoe_kernel::TrimLevel;
use mvqoe_video::{Fps, Genre, Manifest, Resolution};
use proptest::prelude::*;

fn any_trim() -> impl Strategy<Value = TrimLevel> {
    prop::sample::select(TrimLevel::ALL.to_vec())
}

fn any_cap() -> impl Strategy<Value = Resolution> {
    prop::sample::select(Resolution::ALL.to_vec())
}

/// The full policy suite the arena experiment races.
fn suite(manifest: &Manifest) -> Vec<Box<dyn Abr>> {
    let rep = manifest.representation(Resolution::R480p, Fps::F60).unwrap();
    vec![
        Box::new(FixedAbr::new(rep)),
        Box::new(BufferBased::new(Fps::F60)),
        Box::new(ThroughputBased::new(Fps::F30)),
        Box::new(Bola::new(Fps::F60)),
        Box::new(Mpc::new(Fps::F60)),
        Box::new(MemoryAware::new(BufferBased::new(Fps::F60), Fps::F60)),
        Box::new(Hybrid::new(Fps::F60)),
    ]
}

/// One observed step of a session trajectory, as a policy would see it
/// under an arbitrary link trace and pressure history.
#[derive(Debug, Clone)]
struct Step {
    buffer: f64,
    throughput: Option<f64>,
    trim: TrimLevel,
    drop_pct: f64,
    last_download_secs: Option<f64>,
}

fn any_step() -> impl Strategy<Value = Step> {
    (
        0.0f64..60.0,
        prop::option::of(0.05f64..200.0),
        any_trim(),
        0.0f64..100.0,
        prop::option::of(0.01f64..30.0),
    )
        .prop_map(|(buffer, throughput, trim, drop_pct, last_download_secs)| Step {
            buffer,
            throughput,
            trim,
            drop_pct,
            last_download_secs,
        })
}

fn check_decision(
    abr: &mut dyn Abr,
    manifest: &Manifest,
    step: &Step,
    cap: Resolution,
    next_segment: u32,
) -> Result<(), TestCaseError> {
    let ctx = AbrContext {
        manifest,
        buffer_seconds: step.buffer,
        buffer_capacity: 60.0,
        throughput_mbps: step.throughput,
        trim_level: step.trim,
        recent_drop_pct: step.drop_pct,
        last: None,
        screen_cap: cap,
        next_segment,
        last_download_secs: step.last_download_secs,
    };
    let rep = abr.choose(&ctx);
    prop_assert!(
        manifest
            .representation(rep.resolution, rep.fps)
            .is_some(),
        "{} returned a rep outside the manifest",
        abr.name()
    );
    // The fixed policy is exempt from the cap (the experimenter pinned it);
    // adaptive policies must respect the panel.
    if abr.name() != "fixed" {
        prop_assert!(
            rep.resolution <= cap,
            "{} exceeded the screen cap: {} > {}",
            abr.name(),
            rep.resolution,
            cap
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn decisions_stay_in_ladder(
        step in any_step(),
        cap in any_cap(),
        calls in 1usize..12,
    ) {
        let manifest = Manifest::full_ladder(Genre::Travel, 120.0);
        for abr in suite(&manifest).iter_mut() {
            // Repeated calls must also hold (stateful policies).
            for _ in 0..calls {
                check_decision(abr.as_mut(), &manifest, &step, cap, 0)?;
            }
        }
    }

    /// Arbitrary trajectories — the signals a policy sees under any link
    /// trace and pressure history, varying step to step: every policy in
    /// the suite stays on the capped ladder at every step, including past
    /// the end of the manifest's segment range.
    #[test]
    fn decisions_stay_in_ladder_under_arbitrary_traces(
        steps in prop::collection::vec(any_step(), 1..20),
        cap in any_cap(),
    ) {
        let manifest = Manifest::full_ladder(Genre::Travel, 120.0);
        let n_segments = manifest.n_segments();
        for abr in suite(&manifest).iter_mut() {
            for (i, step) in steps.iter().enumerate() {
                let next_segment = (i as u32).min(n_segments);
                check_decision(abr.as_mut(), &manifest, step, cap, next_segment)?;
            }
        }
    }

    /// Every stateful policy's snapshot state round-trips: a fresh policy
    /// restored from `state_value` makes the same next decision.
    #[test]
    fn snapshot_state_round_trips_mid_trajectory(
        steps in prop::collection::vec(any_step(), 1..10),
        probe in any_step(),
    ) {
        let manifest = Manifest::full_ladder(Genre::Travel, 120.0);
        let mk: Vec<fn() -> Box<dyn Abr>> = vec![
            || Box::new(Mpc::new(Fps::F60)),
            || Box::new(Hybrid::new(Fps::F60)),
            || Box::new(MemoryAware::new(BufferBased::new(Fps::F60), Fps::F60)),
        ];
        for make in mk {
            let mut original = make();
            for (i, step) in steps.iter().enumerate() {
                check_decision(original.as_mut(), &manifest, step, Resolution::R1440p, i as u32)?;
            }
            let mut restored = make();
            restored.restore_state(&original.state_value()).unwrap();
            let ctx = AbrContext {
                manifest: &manifest,
                buffer_seconds: probe.buffer,
                buffer_capacity: 60.0,
                throughput_mbps: probe.throughput,
                trim_level: probe.trim,
                recent_drop_pct: probe.drop_pct,
                last: None,
                screen_cap: Resolution::R1440p,
                next_segment: steps.len() as u32,
                last_download_secs: probe.last_download_secs,
            };
            prop_assert_eq!(
                original.choose(&ctx),
                restored.choose(&ctx),
                "{} diverged after state restore",
                original.name()
            );
        }
    }

    /// The memory-aware controller never picks a higher frame rate under
    /// pressure than it would at Normal with the same inner state.
    #[test]
    fn memory_aware_never_raises_fps_under_pressure(
        buffer in 0.0f64..60.0,
        drop_pct in 0.0f64..100.0,
    ) {
        let manifest = Manifest::full_ladder(Genre::Travel, 120.0);
        let pick = |trim: TrimLevel| {
            let mut abr = MemoryAware::new(BufferBased::new(Fps::F60), Fps::F60);
            let ctx = AbrContext {
                manifest: &manifest,
                buffer_seconds: buffer,
                buffer_capacity: 60.0,
                throughput_mbps: Some(100.0),
                trim_level: trim,
                recent_drop_pct: drop_pct,
                last: None,
                screen_cap: Resolution::R1440p,
                next_segment: 0,
                last_download_secs: Some(0.5),
            };
            abr.choose(&ctx).fps.value()
        };
        let normal = pick(TrimLevel::Normal);
        for trim in [TrimLevel::Moderate, TrimLevel::Low, TrimLevel::Critical] {
            prop_assert!(pick(trim) <= normal, "{trim:?} raised fps");
        }
    }

    /// So does the hybrid: memory pressure can only lower its frame rate.
    #[test]
    fn hybrid_never_raises_fps_under_pressure(
        buffer in 0.0f64..60.0,
        drop_pct in 0.0f64..100.0,
        throughput in 0.05f64..200.0,
    ) {
        let manifest = Manifest::full_ladder(Genre::Travel, 120.0);
        let pick = |trim: TrimLevel| {
            let mut abr = Hybrid::new(Fps::F60);
            let ctx = AbrContext {
                manifest: &manifest,
                buffer_seconds: buffer,
                buffer_capacity: 60.0,
                throughput_mbps: Some(throughput),
                trim_level: trim,
                recent_drop_pct: drop_pct,
                last: None,
                screen_cap: Resolution::R1440p,
                next_segment: 0,
                last_download_secs: Some(0.5),
            };
            abr.choose(&ctx).fps.value()
        };
        let normal = pick(TrimLevel::Normal);
        for trim in [TrimLevel::Moderate, TrimLevel::Low, TrimLevel::Critical] {
            prop_assert!(pick(trim) <= normal, "{trim:?} raised fps");
        }
    }
}
