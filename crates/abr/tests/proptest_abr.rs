//! Property tests: every ABR decision stays inside the manifest's ladder
//! and respects the screen cap, whatever the context.

use mvqoe_abr::{Abr, AbrContext, Bola, BufferBased, FixedAbr, MemoryAware, ThroughputBased};
use mvqoe_kernel::TrimLevel;
use mvqoe_video::{Fps, Genre, Manifest, Resolution};
use proptest::prelude::*;

fn any_trim() -> impl Strategy<Value = TrimLevel> {
    prop::sample::select(TrimLevel::ALL.to_vec())
}

fn any_cap() -> impl Strategy<Value = Resolution> {
    prop::sample::select(Resolution::ALL.to_vec())
}

fn check_decision(
    abr: &mut dyn Abr,
    manifest: &Manifest,
    buffer: f64,
    throughput: Option<f64>,
    trim: TrimLevel,
    drop_pct: f64,
    cap: Resolution,
) -> Result<(), TestCaseError> {
    let ctx = AbrContext {
        manifest,
        buffer_seconds: buffer,
        buffer_capacity: 60.0,
        throughput_mbps: throughput,
        trim_level: trim,
        recent_drop_pct: drop_pct,
        last: None,
        screen_cap: cap,
    };
    let rep = abr.choose(&ctx);
    prop_assert!(
        manifest
            .representation(rep.resolution, rep.fps)
            .is_some(),
        "{} returned a rep outside the manifest",
        abr.name()
    );
    // The fixed policy is exempt from the cap (the experimenter pinned it);
    // adaptive policies must respect the panel.
    if abr.name() != "fixed" {
        prop_assert!(
            rep.resolution <= cap,
            "{} exceeded the screen cap: {} > {}",
            abr.name(),
            rep.resolution,
            cap
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn decisions_stay_in_ladder(
        buffer in 0.0f64..60.0,
        throughput in prop::option::of(0.05f64..200.0),
        trim in any_trim(),
        drop_pct in 0.0f64..100.0,
        cap in any_cap(),
        calls in 1usize..12,
    ) {
        let manifest = Manifest::full_ladder(Genre::Travel, 120.0);
        let rep = manifest.representation(Resolution::R480p, Fps::F60).unwrap();
        let mut policies: Vec<Box<dyn Abr>> = vec![
            Box::new(FixedAbr::new(rep)),
            Box::new(BufferBased::new(Fps::F60)),
            Box::new(ThroughputBased::new(Fps::F30)),
            Box::new(Bola::new(Fps::F60)),
            Box::new(MemoryAware::new(BufferBased::new(Fps::F60), Fps::F60)),
        ];
        for abr in policies.iter_mut() {
            // Repeated calls must also hold (stateful policies).
            for _ in 0..calls {
                check_decision(abr.as_mut(), &manifest, buffer, throughput, trim, drop_pct, cap)?;
            }
        }
    }

    /// The memory-aware controller never picks a higher frame rate under
    /// pressure than it would at Normal with the same inner state.
    #[test]
    fn memory_aware_never_raises_fps_under_pressure(
        buffer in 0.0f64..60.0,
        drop_pct in 0.0f64..100.0,
    ) {
        let manifest = Manifest::full_ladder(Genre::Travel, 120.0);
        let pick = |trim: TrimLevel| {
            let mut abr = MemoryAware::new(BufferBased::new(Fps::F60), Fps::F60);
            let ctx = AbrContext {
                manifest: &manifest,
                buffer_seconds: buffer,
                buffer_capacity: 60.0,
                throughput_mbps: Some(100.0),
                trim_level: trim,
                recent_drop_pct: drop_pct,
                last: None,
                screen_cap: Resolution::R1440p,
            };
            abr.choose(&ctx).fps.value()
        };
        let normal = pick(TrimLevel::Normal);
        for trim in [TrimLevel::Moderate, TrimLevel::Low, TrimLevel::Critical] {
            prop_assert!(pick(trim) <= normal, "{trim:?} raised fps");
        }
    }
}
