//! MPC-style lookahead adaptation (RobustMPC flavor, after Yin et al.,
//! SIGCOMM '15).
//!
//! Instead of reacting to the last sample, [`Mpc`] plans: for every rung
//! on the ladder it simulates the buffer over the next `horizon` segments
//! — manifest-declared segment sizes ([`AbrContext::upcoming_segment_bytes`])
//! divided by a robust bandwidth prediction — and commits to the rung
//! maximizing expected QoE (log-bitrate utility minus rebuffer and switch
//! penalties). The prediction starts from the context's shared
//! conservative estimate and is further discounted by the worst relative
//! prediction error observed recently, so a bursty link (handovers,
//! tunnels) earns a wider safety margin.

use crate::context::{Abr, AbrContext};
use mvqoe_video::{Fps, Representation};
use serde::{Deserialize, Serialize};

/// How many past prediction errors the robust discount remembers.
const ERROR_WINDOW: usize = 5;

/// Tuning knobs shared by [`Mpc`] and the hybrid controller.
#[derive(Debug, Clone, Copy)]
pub struct MpcConfig {
    /// Segments of lookahead.
    pub horizon: u32,
    /// Utility units charged per second of predicted rebuffering.
    pub rebuffer_penalty: f64,
    /// Utility units charged per unit of log-bitrate switch distance.
    pub switch_penalty: f64,
}

impl Default for MpcConfig {
    fn default() -> Self {
        MpcConfig {
            horizon: 5,
            rebuffer_penalty: 8.0,
            switch_penalty: 1.0,
        }
    }
}

/// The robust throughput predictor: the context's shared estimate divided
/// by (1 + max recent relative error).
#[derive(Debug, Clone, Default)]
pub(crate) struct Predictor {
    past_errors: Vec<f64>,
    last_prediction: Option<f64>,
}

impl Predictor {
    /// Fold in the newest estimate and return the discounted prediction.
    pub(crate) fn predict(&mut self, ctx: &AbrContext<'_>) -> Option<f64> {
        let est = ctx.predicted_throughput_mbps()?;
        if let Some(pred) = self.last_prediction {
            let err = (pred - est).abs() / est.max(1e-6);
            if self.past_errors.len() == ERROR_WINDOW {
                self.past_errors.remove(0);
            }
            self.past_errors.push(err);
        }
        let max_err = self.past_errors.iter().fold(0.0f64, |a, &e| a.max(e));
        let pred = est / (1.0 + max_err);
        self.last_prediction = Some(pred);
        Some(pred)
    }

    pub(crate) fn state_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("past_errors".into(), self.past_errors.to_value()),
            ("last_prediction".into(), self.last_prediction.to_value()),
        ])
    }

    pub(crate) fn restore(&mut self, state: &serde::Value) -> Result<(), serde::de::Error> {
        let field = |name: &str| {
            state
                .get(name)
                .ok_or_else(|| serde::de::Error::custom(format!("Predictor state missing {name}")))
        };
        self.past_errors = Vec::<f64>::from_value(field("past_errors")?)?;
        self.last_prediction = Option::<f64>::from_value(field("last_prediction")?)?;
        Ok(())
    }
}

/// Expected QoE of streaming the next segments at `rep`, under a constant
/// bandwidth prediction: per-segment log-bitrate utility, minus the
/// rebuffering the buffer simulation predicts, minus a switch penalty
/// against the previous segment's bitrate.
fn plan_score(ctx: &AbrContext<'_>, cfg: &MpcConfig, rep: Representation, pred_mbps: f64) -> f64 {
    let n = cfg.horizon.min(ctx.segments_remaining()).max(1);
    let seg_secs = ctx.segment_seconds();
    let seg_bits = ctx.upcoming_segment_bytes(rep, 1) as f64 * 8.0;
    let dl_secs = seg_bits / (pred_mbps.max(1e-3) * 1e6);
    let min_kbps = ctx
        .ladder_at(rep.fps)
        .first()
        .map(|r| r.bitrate_kbps)
        .unwrap_or(rep.bitrate_kbps) as f64;
    let utility = (rep.bitrate_kbps as f64 / min_kbps).ln();
    let mut buffer = ctx.buffer_seconds;
    let mut rebuffer = 0.0;
    for _ in 0..n {
        if dl_secs > buffer {
            rebuffer += dl_secs - buffer;
            buffer = 0.0;
        } else {
            buffer -= dl_secs;
        }
        buffer = (buffer + seg_secs).min(ctx.buffer_capacity);
    }
    let switch_cost = match ctx.last {
        Some(last) => {
            let prev = (last.bitrate_kbps as f64 / min_kbps).max(1e-6).ln();
            (utility - prev).abs()
        }
        None => 0.0,
    };
    f64::from(n) * utility - cfg.rebuffer_penalty * rebuffer - cfg.switch_penalty * switch_cost
}

/// Pick the ladder rung at `fps` with the best lookahead score (ties go to
/// the lower bitrate). Shared by [`Mpc`] and the hybrid controller.
pub(crate) fn lookahead_pick(
    ctx: &AbrContext<'_>,
    cfg: &MpcConfig,
    fps: Fps,
    pred_mbps: Option<f64>,
) -> Representation {
    let lowest = ctx.lowest(fps).expect("manifest has no rungs at this fps");
    let Some(pred) = pred_mbps else {
        return lowest; // conservative first segment
    };
    let mut best = lowest;
    let mut best_score = f64::NEG_INFINITY;
    for rep in ctx.ladder_at(fps) {
        let score = plan_score(ctx, cfg, rep, pred);
        if score > best_score {
            best_score = score;
            best = rep;
        }
    }
    best
}

/// Lookahead ABR at a fixed frame rate.
#[derive(Debug, Clone)]
pub struct Mpc {
    /// Frame rate whose ladder is used.
    pub fps: Fps,
    cfg: MpcConfig,
    predictor: Predictor,
}

impl Mpc {
    /// Defaults: 5-segment horizon, rebuffer-dominant penalties.
    pub fn new(fps: Fps) -> Mpc {
        Mpc::with_config(fps, MpcConfig::default())
    }

    /// Explicit configuration.
    pub fn with_config(fps: Fps, cfg: MpcConfig) -> Mpc {
        Mpc {
            fps,
            cfg,
            predictor: Predictor::default(),
        }
    }
}

impl Abr for Mpc {
    fn choose(&mut self, ctx: &AbrContext<'_>) -> Representation {
        let pred = self.predictor.predict(ctx);
        lookahead_pick(ctx, &self.cfg, self.fps, pred)
    }

    fn name(&self) -> &'static str {
        "mpc"
    }

    fn state_value(&self) -> serde::Value {
        serde::Value::Map(vec![("predictor".into(), self.predictor.state_value())])
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::de::Error> {
        let field = state
            .get("predictor")
            .ok_or_else(|| serde::de::Error::custom("Mpc state missing predictor"))?;
        self.predictor.restore(field)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_support::*;
    use mvqoe_kernel::TrimLevel;
    use mvqoe_video::Resolution;

    #[test]
    fn first_segment_is_conservative() {
        let m = manifest();
        let mut abr = Mpc::new(Fps::F30);
        let c = ctx(&m, 0.0, None, TrimLevel::Normal);
        assert_eq!(abr.choose(&c).resolution, Resolution::R240p);
    }

    #[test]
    fn ample_bandwidth_and_buffer_reach_the_top_rung() {
        let m = manifest();
        let mut abr = Mpc::new(Fps::F30);
        let c = ctx(&m, 50.0, Some(200.0), TrimLevel::Normal);
        assert_eq!(abr.choose(&c).resolution, Resolution::R1440p);
    }

    #[test]
    fn thin_buffer_holds_the_bitrate_down() {
        let m = manifest();
        // 9 Mbit/s estimate: the one-step throughput rule commits to
        // 1080p30 (8 Mbit/s ≤ 0.9 × 9), but with a nearly empty buffer the
        // lookahead sees the rebuffer risk and picks a lower rung.
        let c = ctx(&m, 0.5, Some(9.0), TrimLevel::Normal);
        let greedy = c
            .best_under_rate(Fps::F30, c.predicted_throughput_mbps().unwrap())
            .unwrap();
        assert_eq!(greedy.resolution, Resolution::R1080p);
        let mut abr = Mpc::new(Fps::F30);
        let planned = abr.choose(&c);
        assert!(
            planned.bitrate_kbps < greedy.bitrate_kbps,
            "lookahead must hedge on a thin buffer: {} vs {}",
            planned.bitrate_kbps,
            greedy.bitrate_kbps
        );
    }

    #[test]
    fn volatile_estimates_widen_the_safety_margin() {
        let m = manifest();
        let mut abr = Mpc::new(Fps::F30);
        // Feed a stable 10 Mbit/s history, then the same after a crash to
        // 2 Mbit/s and back: the post-volatility pick must be no higher.
        for _ in 0..3 {
            abr.choose(&ctx(&m, 40.0, Some(10.0), TrimLevel::Normal));
        }
        let stable = abr.choose(&ctx(&m, 40.0, Some(10.0), TrimLevel::Normal));
        let mut abr = Mpc::new(Fps::F30);
        for t in [10.0, 2.0, 10.0] {
            abr.choose(&ctx(&m, 40.0, Some(t), TrimLevel::Normal));
        }
        let volatile = abr.choose(&ctx(&m, 40.0, Some(10.0), TrimLevel::Normal));
        assert!(
            volatile.bitrate_kbps <= stable.bitrate_kbps,
            "volatility must not raise the pick"
        );
        assert!(
            volatile.bitrate_kbps < stable.bitrate_kbps,
            "a 5× swing should measurably discount the prediction"
        );
    }

    #[test]
    fn snapshot_round_trip_restores_decisions() {
        let m = manifest();
        let mut original = Mpc::new(Fps::F60);
        // Drive through a volatile spell to build predictor state.
        for t in [20.0, 4.0, 15.0, 6.0] {
            original.choose(&ctx(&m, 25.0, Some(t), TrimLevel::Normal));
        }
        let state = original.state_value();
        let mut restored = Mpc::new(Fps::F60);
        restored.restore_state(&state).unwrap();
        // Identical decisions on an identical context sequence.
        for t in [12.0, 3.0, 30.0, 8.0] {
            let c = ctx(&m, 18.0, Some(t), TrimLevel::Normal);
            assert_eq!(original.choose(&c), restored.choose(&c));
        }
    }

    #[test]
    fn restore_rejects_malformed_state() {
        let mut abr = Mpc::new(Fps::F30);
        assert!(abr.restore_state(&serde::Value::Null).is_err());
    }
}
