//! The decision context and the `Abr` trait.

use mvqoe_kernel::TrimLevel;
use mvqoe_video::{Fps, Manifest, Representation, Resolution};

/// Safety factor applied by [`AbrContext::predicted_throughput_mbps`]:
/// dash.js-style 90% of the harmonic-mean estimate. Policies that want a
/// conservative bandwidth prediction use the context's method rather than
/// applying their own factor, so every policy prices bandwidth the same
/// way.
pub const THROUGHPUT_SAFETY: f64 = 0.9;

/// Everything an ABR algorithm may look at when picking the next segment's
/// representation.
#[derive(Debug, Clone)]
pub struct AbrContext<'a> {
    /// The manifest being streamed.
    pub manifest: &'a Manifest,
    /// Current buffer occupancy in seconds.
    pub buffer_seconds: f64,
    /// Buffer capacity in seconds.
    pub buffer_capacity: f64,
    /// Recent harmonic-mean delivered throughput, Mbit/s (None before the
    /// first segment). This is *the* throughput estimator: the session
    /// computes it once per decision from the server's request history, so
    /// policies cannot disagree on its definition.
    pub throughput_mbps: Option<f64>,
    /// The current `onTrimMemory` level — the paper's proposed signal.
    pub trim_level: TrimLevel,
    /// Frame-drop percentage over the last observation window (client-side
    /// feedback the paper suggests monitoring).
    pub recent_drop_pct: f64,
    /// The representation of the previous segment, if any.
    pub last: Option<Representation>,
    /// Device screen cap: streaming above the panel resolution is wasted
    /// (the "coarse-grained device measure" the paper contrasts with).
    pub screen_cap: Resolution,
    /// Index of the segment being decided (0-based), for lookahead
    /// policies that plan over the remaining segments.
    pub next_segment: u32,
    /// Wall-clock seconds the most recent segment download took (None
    /// before the first segment) — MPC's prediction-error feedback.
    pub last_download_secs: Option<f64>,
}

impl AbrContext<'_> {
    /// Segment duration in seconds.
    pub fn segment_seconds(&self) -> f64 {
        self.manifest.segment_seconds
    }

    /// Segments left to stream, including the one being decided.
    pub fn segments_remaining(&self) -> u32 {
        self.manifest.n_segments().saturating_sub(self.next_segment)
    }

    /// Manifest-declared bytes for the next `n` segments at `rep`
    /// (clamped to the segments actually remaining). DASH manifests
    /// declare nominal per-segment sizes; lookahead policies plan on
    /// those, while the wire transfer still carries VBR noise.
    pub fn upcoming_segment_bytes(&self, rep: Representation, n: u32) -> u64 {
        let n = n.min(self.segments_remaining());
        rep.chunk_bytes(self.manifest.segment_seconds) * u64::from(n)
    }

    /// The conservative bandwidth prediction shared by every policy:
    /// [`THROUGHPUT_SAFETY`] × the harmonic-mean estimate.
    pub fn predicted_throughput_mbps(&self) -> Option<f64> {
        self.throughput_mbps.map(|m| m * THROUGHPUT_SAFETY)
    }
    /// The ladder at a given frame rate, capped at the screen resolution.
    pub fn ladder_at(&self, fps: Fps) -> Vec<Representation> {
        self.manifest
            .ladder_at_fps(fps)
            .into_iter()
            .filter(|r| r.resolution <= self.screen_cap)
            .collect()
    }

    /// Highest-bitrate representation at `fps` not exceeding `mbps`.
    pub fn best_under_rate(&self, fps: Fps, mbps: f64) -> Option<Representation> {
        self.ladder_at(fps)
            .into_iter()
            .rev()
            .find(|r| r.bitrate_kbps as f64 / 1000.0 <= mbps)
    }

    /// The lowest rung at `fps`.
    pub fn lowest(&self, fps: Fps) -> Option<Representation> {
        self.ladder_at(fps).into_iter().next()
    }
}

/// An adaptive-bitrate policy.
pub trait Abr {
    /// Pick the representation for the next segment.
    fn choose(&mut self, ctx: &AbrContext<'_>) -> Representation;

    /// Short human-readable name for experiment output.
    fn name(&self) -> &'static str;

    /// The policy's mutable decision state, for session snapshots.
    ///
    /// Stateless policies (fixed, throughput, buffer-based, BOLA — pure
    /// functions of their config and the context) keep the default `Null`.
    /// Stateful policies must capture everything [`Abr::choose`] reads that
    /// [`Abr::choose`] also writes, so a restored policy's next decision is
    /// identical to the original's.
    fn state_value(&self) -> serde::Value {
        serde::Value::Null
    }

    /// Restore the state captured by [`Abr::state_value`] into a policy
    /// constructed with the same configuration.
    fn restore_state(&mut self, _state: &serde::Value) -> Result<(), serde::de::Error> {
        Ok(())
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use mvqoe_video::Genre;

    pub fn manifest() -> Manifest {
        Manifest::full_ladder(Genre::Travel, 180.0)
    }

    pub fn ctx<'a>(
        manifest: &'a Manifest,
        buffer: f64,
        throughput: Option<f64>,
        trim: TrimLevel,
    ) -> AbrContext<'a> {
        AbrContext {
            manifest,
            buffer_seconds: buffer,
            buffer_capacity: 60.0,
            throughput_mbps: throughput,
            trim_level: trim,
            recent_drop_pct: 0.0,
            last: None,
            screen_cap: Resolution::R1440p,
            next_segment: 0,
            last_download_secs: throughput.map(|_| 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;

    #[test]
    fn ladder_respects_screen_cap() {
        let m = manifest();
        let mut c = ctx(&m, 30.0, None, TrimLevel::Normal);
        c.screen_cap = Resolution::R720p;
        let ladder = c.ladder_at(Fps::F60);
        assert!(ladder.iter().all(|r| r.resolution <= Resolution::R720p));
        assert_eq!(ladder.len(), 4); // 240p..720p
    }

    #[test]
    fn best_under_rate_picks_greatest_fit() {
        let m = manifest();
        let c = ctx(&m, 30.0, None, TrimLevel::Normal);
        // 6 Mbit/s fits 720p30 (5 Mbit/s) but not 1080p30 (8 Mbit/s).
        let r = c.best_under_rate(Fps::F30, 6.0).unwrap();
        assert_eq!(r.resolution, Resolution::R720p);
        // Nothing fits 0.1 Mbit/s.
        assert!(c.best_under_rate(Fps::F30, 0.1).is_none());
    }

    #[test]
    fn lowest_is_240p() {
        let m = manifest();
        let c = ctx(&m, 0.0, None, TrimLevel::Normal);
        assert_eq!(c.lowest(Fps::F60).unwrap().resolution, Resolution::R240p);
    }

    #[test]
    fn lookahead_bytes_use_manifest_nominals_and_clamp() {
        let m = manifest(); // 180 s at 4 s segments → 45 segments
        let mut c = ctx(&m, 30.0, Some(10.0), TrimLevel::Normal);
        let rep = m.representation(Resolution::R720p, Fps::F30).unwrap();
        assert_eq!(c.segment_seconds(), 4.0);
        assert_eq!(c.segments_remaining(), 45);
        assert_eq!(c.upcoming_segment_bytes(rep, 5), 5 * rep.chunk_bytes(4.0));
        // Near the end of the stream the lookahead clamps.
        c.next_segment = 43;
        assert_eq!(c.segments_remaining(), 2);
        assert_eq!(c.upcoming_segment_bytes(rep, 5), 2 * rep.chunk_bytes(4.0));
    }

    #[test]
    fn predicted_throughput_applies_shared_safety() {
        let m = manifest();
        let c = ctx(&m, 30.0, Some(10.0), TrimLevel::Normal);
        assert_eq!(c.predicted_throughput_mbps(), Some(10.0 * THROUGHPUT_SAFETY));
        let c = ctx(&m, 30.0, None, TrimLevel::Normal);
        assert_eq!(c.predicted_throughput_mbps(), None);
    }
}
