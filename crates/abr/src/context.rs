//! The decision context and the `Abr` trait.

use mvqoe_kernel::TrimLevel;
use mvqoe_video::{Fps, Manifest, Representation, Resolution};

/// Everything an ABR algorithm may look at when picking the next segment's
/// representation.
#[derive(Debug, Clone)]
pub struct AbrContext<'a> {
    /// The manifest being streamed.
    pub manifest: &'a Manifest,
    /// Current buffer occupancy in seconds.
    pub buffer_seconds: f64,
    /// Buffer capacity in seconds.
    pub buffer_capacity: f64,
    /// Recent harmonic-mean delivered throughput, Mbit/s (None before the
    /// first segment).
    pub throughput_mbps: Option<f64>,
    /// The current `onTrimMemory` level — the paper's proposed signal.
    pub trim_level: TrimLevel,
    /// Frame-drop percentage over the last observation window (client-side
    /// feedback the paper suggests monitoring).
    pub recent_drop_pct: f64,
    /// The representation of the previous segment, if any.
    pub last: Option<Representation>,
    /// Device screen cap: streaming above the panel resolution is wasted
    /// (the "coarse-grained device measure" the paper contrasts with).
    pub screen_cap: Resolution,
}

impl AbrContext<'_> {
    /// The ladder at a given frame rate, capped at the screen resolution.
    pub fn ladder_at(&self, fps: Fps) -> Vec<Representation> {
        self.manifest
            .ladder_at_fps(fps)
            .into_iter()
            .filter(|r| r.resolution <= self.screen_cap)
            .collect()
    }

    /// Highest-bitrate representation at `fps` not exceeding `mbps`.
    pub fn best_under_rate(&self, fps: Fps, mbps: f64) -> Option<Representation> {
        self.ladder_at(fps)
            .into_iter()
            .rev()
            .find(|r| r.bitrate_kbps as f64 / 1000.0 <= mbps)
    }

    /// The lowest rung at `fps`.
    pub fn lowest(&self, fps: Fps) -> Option<Representation> {
        self.ladder_at(fps).into_iter().next()
    }
}

/// An adaptive-bitrate policy.
pub trait Abr {
    /// Pick the representation for the next segment.
    fn choose(&mut self, ctx: &AbrContext<'_>) -> Representation;

    /// Short human-readable name for experiment output.
    fn name(&self) -> &'static str;

    /// The policy's mutable decision state, for session snapshots.
    ///
    /// Stateless policies (fixed, throughput, buffer-based, BOLA — pure
    /// functions of their config and the context) keep the default `Null`.
    /// Stateful policies must capture everything [`Abr::choose`] reads that
    /// [`Abr::choose`] also writes, so a restored policy's next decision is
    /// identical to the original's.
    fn state_value(&self) -> serde::Value {
        serde::Value::Null
    }

    /// Restore the state captured by [`Abr::state_value`] into a policy
    /// constructed with the same configuration.
    fn restore_state(&mut self, _state: &serde::Value) -> Result<(), serde::de::Error> {
        Ok(())
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use mvqoe_video::Genre;

    pub fn manifest() -> Manifest {
        Manifest::full_ladder(Genre::Travel, 180.0)
    }

    pub fn ctx<'a>(
        manifest: &'a Manifest,
        buffer: f64,
        throughput: Option<f64>,
        trim: TrimLevel,
    ) -> AbrContext<'a> {
        AbrContext {
            manifest,
            buffer_seconds: buffer,
            buffer_capacity: 60.0,
            throughput_mbps: throughput,
            trim_level: trim,
            recent_drop_pct: 0.0,
            last: None,
            screen_cap: Resolution::R1440p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;

    #[test]
    fn ladder_respects_screen_cap() {
        let m = manifest();
        let mut c = ctx(&m, 30.0, None, TrimLevel::Normal);
        c.screen_cap = Resolution::R720p;
        let ladder = c.ladder_at(Fps::F60);
        assert!(ladder.iter().all(|r| r.resolution <= Resolution::R720p));
        assert_eq!(ladder.len(), 4); // 240p..720p
    }

    #[test]
    fn best_under_rate_picks_greatest_fit() {
        let m = manifest();
        let c = ctx(&m, 30.0, None, TrimLevel::Normal);
        // 6 Mbit/s fits 720p30 (5 Mbit/s) but not 1080p30 (8 Mbit/s).
        let r = c.best_under_rate(Fps::F30, 6.0).unwrap();
        assert_eq!(r.resolution, Resolution::R720p);
        // Nothing fits 0.1 Mbit/s.
        assert!(c.best_under_rate(Fps::F30, 0.1).is_none());
    }

    #[test]
    fn lowest_is_240p() {
        let m = manifest();
        let c = ctx(&m, 0.0, None, TrimLevel::Normal);
        assert_eq!(c.lowest(Fps::F60).unwrap().resolution, Resolution::R240p);
    }
}
