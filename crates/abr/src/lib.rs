//! Adaptive-bitrate (ABR) algorithms.
//!
//! Classic ABR adapts to *network* bottlenecks; the paper's central
//! implication (§6–§7) is that the *device* — memory pressure specifically —
//! must become an input too. This crate provides:
//!
//! * [`FixedAbr`] — pin one representation (the paper's controlled
//!   experiments stream a fixed encoding);
//! * [`BufferBased`] — BBA-style occupancy→bitrate mapping \[27\];
//! * [`ThroughputBased`] — harmonic-throughput rate picking, dash.js style;
//! * [`Bola`] — Lyapunov utility maximization \[35\];
//! * [`Mpc`] — MPC-style lookahead: plan expected QoE over the next N
//!   segments from the manifest's declared sizes and a robust throughput
//!   prediction (Yin et al., SIGCOMM '15 flavor);
//! * [`MemoryAware`] — the adaptation the paper demonstrates in Figs. 16–17:
//!   react to `onTrimMemory` signals by *reducing the encoded frame rate
//!   first* (60 → 48 → 24), then the resolution, and recover cautiously
//!   once pressure clears. It wraps any network ABR, so network and memory
//!   bottlenecks compose;
//! * [`Hybrid`] — the joint-pressure controller: memory pressure degrades
//!   the frame rate (the memory-aware cap dynamics), network pressure
//!   degrades the bitrate (the MPC lookahead, run on the capped ladder).
//!
//! All algorithms implement [`Abr`] over an [`AbrContext`] snapshot and
//! return a `Representation` from the manifest's ladder.

pub mod bola;
pub mod buffer_based;
pub mod context;
pub mod fixed;
pub mod hybrid;
pub mod memory_aware;
pub mod mpc;
pub mod schedule;
pub mod throughput;

pub use bola::Bola;
pub use buffer_based::BufferBased;
pub use context::{Abr, AbrContext, THROUGHPUT_SAFETY};
pub use fixed::FixedAbr;
pub use hybrid::Hybrid;
pub use memory_aware::{MemoryAware, MemoryAwareConfig};
pub use mpc::{Mpc, MpcConfig};
pub use schedule::ScheduledFps;
pub use throughput::ThroughputBased;
