//! Pin one representation — the paper's controlled-experiment "policy".

use crate::context::{Abr, AbrContext};
use mvqoe_video::Representation;

/// Always stream the same representation, as the paper's §4 experiments do
/// (e.g. "1080p at 60 FPS" for a whole session).
#[derive(Debug, Clone, Copy)]
pub struct FixedAbr {
    rep: Representation,
}

impl FixedAbr {
    /// Pin `rep`.
    pub fn new(rep: Representation) -> FixedAbr {
        FixedAbr { rep }
    }
}

impl Abr for FixedAbr {
    fn choose(&mut self, _ctx: &AbrContext<'_>) -> Representation {
        self.rep
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_support::*;
    use mvqoe_kernel::TrimLevel;
    use mvqoe_video::{Fps, Resolution};

    #[test]
    fn always_returns_the_pinned_rep() {
        let m = manifest();
        let rep = m.representation(Resolution::R1080p, Fps::F60).unwrap();
        let mut abr = FixedAbr::new(rep);
        for trim in [TrimLevel::Normal, TrimLevel::Critical] {
            let c = ctx(&m, 10.0, Some(0.2), trim);
            assert_eq!(abr.choose(&c), rep);
        }
        assert_eq!(abr.name(), "fixed");
    }
}
