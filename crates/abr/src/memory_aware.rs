//! Memory-aware adaptation — the paper's proposed client-side mechanism.
//!
//! §6 demonstrates two levers and one signal:
//!
//! * lowering the *encoded frame rate* rescues playback at a given
//!   resolution (Fig. 16: 1080p renders 0 FPS at 60 FPS encoding but
//!   cleanly at 24 FPS on a pressured Nokia 1);
//! * `onTrimMemory` signals are a usable *trigger* for switching (Fig. 17);
//! * bitrate/resolution reduction composes with frame-rate reduction.
//!
//! [`MemoryAware`] wraps any network ABR: the inner policy picks the
//! resolution the network can sustain, then memory state caps the frame
//! rate (60 → 48 → 24) and, under severe pressure, the resolution. Client-
//! side drop feedback provides a safety net for devices that cannot decode
//! a representation even without memory pressure (the paper's Nokia 1 at
//! 1080p). Recovery is deliberately sticky: pressure states persist for
//! long stretches (Fig. 6), so the controller waits for several clean
//! segments before stepping back up.

use crate::context::{Abr, AbrContext};
use mvqoe_kernel::TrimLevel;
use mvqoe_video::{Fps, Representation, Resolution};
use serde::{Deserialize, Serialize};

/// Tuning knobs for [`MemoryAware`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MemoryAwareConfig {
    /// Consecutive Normal-state decisions before relaxing one cap step.
    pub recovery_patience: u32,
    /// Recent drop percentage above which the controller reacts even
    /// without a trim signal (decode-capacity safety net).
    pub drop_react_pct: f64,
    /// Resolution floor — never adapt below this.
    pub min_resolution: Resolution,
}

impl Default for MemoryAwareConfig {
    fn default() -> Self {
        MemoryAwareConfig {
            recovery_patience: 3,
            drop_react_pct: 10.0,
            min_resolution: Resolution::R240p,
        }
    }
}

/// The memory-aware wrapper.
#[derive(Debug, Clone)]
pub struct MemoryAware<A> {
    inner: A,
    cfg: MemoryAwareConfig,
    /// The frame rate the user/content wants when unconstrained.
    preferred_fps: Fps,
    fps_cap: Fps,
    res_cap: Resolution,
    normal_streak: u32,
}

impl<A: Abr> MemoryAware<A> {
    /// Wrap `inner`, preferring `preferred_fps` when memory allows.
    pub fn new(inner: A, preferred_fps: Fps) -> MemoryAware<A> {
        MemoryAware::with_config(inner, preferred_fps, MemoryAwareConfig::default())
    }

    /// Wrap with explicit configuration.
    pub fn with_config(inner: A, preferred_fps: Fps, cfg: MemoryAwareConfig) -> MemoryAware<A> {
        MemoryAware {
            inner,
            cfg,
            preferred_fps,
            fps_cap: preferred_fps,
            res_cap: Resolution::R1440p,
            normal_streak: 0,
        }
    }

    /// Current frame-rate cap (for experiment logging).
    pub fn fps_cap(&self) -> Fps {
        self.fps_cap
    }

    /// Current resolution cap (for experiment logging).
    pub fn res_cap(&self) -> Resolution {
        self.res_cap
    }

    fn tighten(&mut self, trim: TrimLevel, drop_pct: f64) {
        match trim {
            TrimLevel::Critical => {
                self.fps_cap = Fps::F24;
                self.res_cap = self.res_cap.min(Resolution::R480p);
            }
            TrimLevel::Low => {
                self.fps_cap = Fps::F24;
                self.res_cap = self
                    .res_cap
                    .step_down()
                    .unwrap_or(self.cfg.min_resolution)
                    .max(self.cfg.min_resolution);
            }
            TrimLevel::Moderate => {
                // First lever: frame rate. Escalate 60→48, and 48→24 only if
                // drops persist.
                self.fps_cap = match self.fps_cap {
                    Fps::F60 => Fps::F48,
                    Fps::F48 | Fps::F30 if drop_pct > self.cfg.drop_react_pct => Fps::F24,
                    cap => cap,
                };
            }
            TrimLevel::Normal => unreachable!("tighten is only called under pressure"),
        }
    }

    fn relax(&mut self) {
        // Restore resolution first (biggest QoE win), then frame rate.
        if self.res_cap < Resolution::R1440p {
            self.res_cap = self.res_cap.step_up().unwrap_or(Resolution::R1440p);
            return;
        }
        self.fps_cap = match (self.fps_cap, self.preferred_fps) {
            (Fps::F24, pref) if pref >= Fps::F30 => Fps::F30,
            (Fps::F30, pref) if pref >= Fps::F48 => Fps::F48,
            (Fps::F48, pref) if pref >= Fps::F60 => Fps::F60,
            (cap, _) => cap,
        };
    }
}

impl<A: Abr> Abr for MemoryAware<A> {
    fn choose(&mut self, ctx: &AbrContext<'_>) -> Representation {
        if ctx.trim_level.is_pressure() {
            self.normal_streak = 0;
            self.tighten(ctx.trim_level, ctx.recent_drop_pct);
        } else if ctx.recent_drop_pct > self.cfg.drop_react_pct {
            // No memory pressure but the device still can't keep up: the
            // decode path is the bottleneck. Reduce frame rate persistently.
            self.normal_streak = 0;
            self.fps_cap = match self.fps_cap {
                Fps::F60 => Fps::F48,
                Fps::F48 | Fps::F30 => Fps::F24,
                Fps::F24 => Fps::F24,
            };
        } else {
            self.normal_streak += 1;
            if self.normal_streak >= self.cfg.recovery_patience {
                self.normal_streak = 0;
                self.relax();
            }
        }

        // Network policy picks the resolution it can sustain…
        let inner_pick = self.inner.choose(ctx);
        // …then memory caps apply.
        let fps = if self.fps_cap.value() < self.preferred_fps.value() {
            self.fps_cap
        } else {
            self.preferred_fps
        };
        let res = inner_pick
            .resolution
            .min(self.res_cap)
            .max(self.cfg.min_resolution);
        ctx.manifest
            .representation(res, fps)
            .unwrap_or(inner_pick)
    }

    fn name(&self) -> &'static str {
        "memory-aware"
    }

    fn state_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("fps_cap".into(), self.fps_cap.to_value()),
            ("res_cap".into(), self.res_cap.to_value()),
            ("normal_streak".into(), self.normal_streak.to_value()),
            ("inner".into(), self.inner.state_value()),
        ])
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::de::Error> {
        let field = |name: &str| {
            state.get(name).ok_or_else(|| {
                serde::de::Error::custom(format!("MemoryAware state missing {name}"))
            })
        };
        self.fps_cap = Fps::from_value(field("fps_cap")?)?;
        self.res_cap = Resolution::from_value(field("res_cap")?)?;
        self.normal_streak = u32::from_value(field("normal_streak")?)?;
        self.inner.restore_state(field("inner")?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer_based::BufferBased;
    use crate::context::test_support::*;
    use crate::fixed::FixedAbr;

    fn fixed_1080p60() -> FixedAbr {
        let m = manifest();
        FixedAbr::new(m.representation(Resolution::R1080p, Fps::F60).unwrap())
    }

    #[test]
    fn normal_state_passes_inner_through() {
        let m = manifest();
        let mut abr = MemoryAware::new(fixed_1080p60(), Fps::F60);
        let c = ctx(&m, 58.0, Some(50.0), TrimLevel::Normal);
        let r = abr.choose(&c);
        assert_eq!(r.resolution, Resolution::R1080p);
        assert_eq!(r.fps, Fps::F60);
    }

    #[test]
    fn moderate_pressure_steps_frame_rate_down() {
        let m = manifest();
        let mut abr = MemoryAware::new(fixed_1080p60(), Fps::F60);
        let c = ctx(&m, 58.0, Some(50.0), TrimLevel::Moderate);
        let r = abr.choose(&c);
        assert_eq!(r.fps, Fps::F48, "first lever is 60→48");
        assert_eq!(r.resolution, Resolution::R1080p, "resolution kept");
        // Drops persist at 48 → 24.
        let mut c2 = ctx(&m, 58.0, Some(50.0), TrimLevel::Moderate);
        c2.recent_drop_pct = 25.0;
        let r2 = abr.choose(&c2);
        assert_eq!(r2.fps, Fps::F24);
    }

    #[test]
    fn critical_pressure_caps_resolution_too() {
        let m = manifest();
        let mut abr = MemoryAware::new(fixed_1080p60(), Fps::F60);
        let c = ctx(&m, 58.0, Some(50.0), TrimLevel::Critical);
        let r = abr.choose(&c);
        assert_eq!(r.fps, Fps::F24);
        assert!(r.resolution <= Resolution::R480p);
    }

    #[test]
    fn recovery_is_sticky_then_stepwise() {
        let m = manifest();
        let mut abr = MemoryAware::new(fixed_1080p60(), Fps::F60);
        abr.choose(&ctx(&m, 58.0, None, TrimLevel::Critical));
        // Two Normal segments: caps unchanged (patience = 3).
        for _ in 0..2 {
            let r = abr.choose(&ctx(&m, 58.0, None, TrimLevel::Normal));
            assert_eq!(r.fps, Fps::F24);
        }
        // Third Normal: resolution relaxes one step first.
        let r = abr.choose(&ctx(&m, 58.0, None, TrimLevel::Normal));
        assert_eq!(r.resolution, Resolution::R720p);
        assert_eq!(r.fps, Fps::F24, "frame rate relaxes only after resolution");
        // Keep recovering: eventually back to 1080p60.
        for _ in 0..30 {
            abr.choose(&ctx(&m, 58.0, None, TrimLevel::Normal));
        }
        let r = abr.choose(&ctx(&m, 58.0, None, TrimLevel::Normal));
        assert_eq!(r.resolution, Resolution::R1080p);
        assert_eq!(r.fps, Fps::F60);
    }

    #[test]
    fn drop_feedback_reacts_without_pressure() {
        // Nokia 1 at 1080p30: no trim signal, but 19% drops — the safety
        // net must lower the frame rate.
        let m = manifest();
        let inner = FixedAbr::new(m.representation(Resolution::R1080p, Fps::F30).unwrap());
        let mut abr = MemoryAware::new(inner, Fps::F30);
        let mut c = ctx(&m, 58.0, None, TrimLevel::Normal);
        c.recent_drop_pct = 19.0;
        let r = abr.choose(&c);
        assert_eq!(r.fps, Fps::F24);
        assert_eq!(r.resolution, Resolution::R1080p);
    }

    #[test]
    fn composes_with_network_abr() {
        let m = manifest();
        let mut abr = MemoryAware::new(BufferBased::new(Fps::F60), Fps::F60);
        // Low buffer (network constrained) + Moderate pressure: both the
        // network rung and the fps cap apply.
        let c = ctx(&m, 3.0, Some(1.0), TrimLevel::Moderate);
        let r = abr.choose(&c);
        assert_eq!(r.resolution, Resolution::R240p, "network picks low rung");
        assert_eq!(r.fps, Fps::F48, "memory caps the frame rate");
        assert_eq!(abr.name(), "memory-aware");
    }

    #[test]
    fn respects_resolution_floor() {
        let m = manifest();
        let cfg = MemoryAwareConfig {
            min_resolution: Resolution::R360p,
            ..Default::default()
        };
        let inner = FixedAbr::new(m.representation(Resolution::R240p, Fps::F60).unwrap());
        let mut abr = MemoryAware::with_config(inner, Fps::F60, cfg);
        let r = abr.choose(&ctx(&m, 58.0, None, TrimLevel::Critical));
        assert_eq!(r.resolution, Resolution::R360p);
    }
}
