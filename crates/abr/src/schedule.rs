//! A scripted per-segment schedule — the paper's Fig. 17 switches the
//! encoded frame rate 60 → 24 → 48 mid-session at fixed points.

use crate::context::{Abr, AbrContext};
use mvqoe_video::{Fps, Representation, Resolution};

/// Fixed resolution, scripted frame-rate phases.
#[derive(Debug, Clone)]
pub struct ScheduledFps {
    resolution: Resolution,
    /// `(segments_in_phase, fps)` entries; the last phase extends forever.
    plan: Vec<(u32, Fps)>,
    served: u32,
}

impl ScheduledFps {
    /// Create a schedule at a fixed resolution.
    pub fn new(resolution: Resolution, plan: Vec<(u32, Fps)>) -> ScheduledFps {
        assert!(!plan.is_empty());
        ScheduledFps {
            resolution,
            plan,
            served: 0,
        }
    }

    fn current_fps(&self) -> Fps {
        let mut seen = 0;
        for &(n, fps) in &self.plan {
            seen += n;
            if self.served < seen {
                return fps;
            }
        }
        self.plan.last().unwrap().1
    }
}

impl Abr for ScheduledFps {
    fn choose(&mut self, ctx: &AbrContext<'_>) -> Representation {
        let fps = self.current_fps();
        self.served += 1;
        ctx.manifest
            .representation(self.resolution, fps)
            .expect("ladder covers the scheduled cell")
    }

    fn name(&self) -> &'static str {
        "scheduled-fps"
    }

    fn state_value(&self) -> serde::Value {
        use serde::Serialize;
        self.served.to_value()
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::de::Error> {
        use serde::Deserialize;
        self.served = u32::from_value(state)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_support::*;
    use mvqoe_kernel::TrimLevel;

    #[test]
    fn phases_advance_by_segment_count() {
        let m = manifest();
        let mut abr = ScheduledFps::new(
            Resolution::R480p,
            vec![(2, Fps::F60), (2, Fps::F24), (1, Fps::F48)],
        );
        let c = ctx(&m, 30.0, None, TrimLevel::Normal);
        let picks: Vec<u32> = (0..7).map(|_| abr.choose(&c).fps.value()).collect();
        assert_eq!(picks, vec![60, 60, 24, 24, 48, 48, 48]);
    }

    #[test]
    fn resolution_is_fixed() {
        let m = manifest();
        let mut abr = ScheduledFps::new(Resolution::R480p, vec![(1, Fps::F60)]);
        let c = ctx(&m, 30.0, None, TrimLevel::Critical);
        assert_eq!(abr.choose(&c).resolution, Resolution::R480p);
    }
}
