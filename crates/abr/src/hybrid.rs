//! The hybrid controller: joint memory + bandwidth adaptation.
//!
//! The paper keeps the network a non-bottleneck so memory pressure is the
//! only QoE variable; the joint-pressure regime breaks that isolation and
//! the two adaptation families conflict. A pure bandwidth policy (even
//! MPC) keeps streaming 60 fps into a memory-starved decoder; the
//! memory-aware wrapper picks its bitrate with a one-step rule that
//! over-commits on bursty links. [`Hybrid`] arbitrates the two signals
//! with the paper's lever assignment:
//!
//! * **memory pressure → frame rate** (and, when severe, a resolution
//!   cap), exactly the sticky 60→48→24 ladder of
//!   [`MemoryAware`](crate::MemoryAware);
//! * **network pressure → bitrate**, via the MPC lookahead run on the
//!   ladder *at the capped frame rate* — so when memory pressure forces
//!   24 fps, the planner prices the cheaper 24 fps rungs and banks the
//!   freed bandwidth as buffer instead of wasting it on frames the
//!   decoder would drop.

use crate::context::{Abr, AbrContext};
use crate::memory_aware::MemoryAwareConfig;
use crate::mpc::{lookahead_pick, MpcConfig, Predictor};
use mvqoe_kernel::TrimLevel;
use mvqoe_video::{Fps, Representation, Resolution};
use serde::{Deserialize, Serialize};

/// The hybrid memory/bandwidth controller.
#[derive(Debug, Clone)]
pub struct Hybrid {
    mem: MemoryAwareConfig,
    mpc: MpcConfig,
    /// The frame rate the user/content wants when unconstrained.
    preferred_fps: Fps,
    fps_cap: Fps,
    res_cap: Resolution,
    normal_streak: u32,
    predictor: Predictor,
}

impl Hybrid {
    /// Default knobs from both parents: the memory-aware wrapper's sticky
    /// caps and MPC's 5-segment lookahead.
    pub fn new(preferred_fps: Fps) -> Hybrid {
        Hybrid::with_config(preferred_fps, MemoryAwareConfig::default(), MpcConfig::default())
    }

    /// Explicit configuration.
    pub fn with_config(preferred_fps: Fps, mem: MemoryAwareConfig, mpc: MpcConfig) -> Hybrid {
        Hybrid {
            mem,
            mpc,
            preferred_fps,
            fps_cap: preferred_fps,
            res_cap: Resolution::R1440p,
            normal_streak: 0,
            predictor: Predictor::default(),
        }
    }

    /// Current frame-rate cap (for experiment logging).
    pub fn fps_cap(&self) -> Fps {
        self.fps_cap
    }

    /// Current resolution cap (for experiment logging).
    pub fn res_cap(&self) -> Resolution {
        self.res_cap
    }

    // The memory lever: identical cap dynamics to `MemoryAware`, so any
    // QoE difference against it in the arena is attributable to the
    // bandwidth side alone.
    fn update_memory_caps(&mut self, ctx: &AbrContext<'_>) {
        if ctx.trim_level.is_pressure() {
            self.normal_streak = 0;
            self.tighten(ctx.trim_level, ctx.recent_drop_pct);
        } else if ctx.recent_drop_pct > self.mem.drop_react_pct {
            self.normal_streak = 0;
            self.fps_cap = match self.fps_cap {
                Fps::F60 => Fps::F48,
                Fps::F48 | Fps::F30 => Fps::F24,
                Fps::F24 => Fps::F24,
            };
        } else {
            self.normal_streak += 1;
            if self.normal_streak >= self.mem.recovery_patience {
                self.normal_streak = 0;
                self.relax();
            }
        }
    }

    fn tighten(&mut self, trim: TrimLevel, drop_pct: f64) {
        match trim {
            TrimLevel::Critical => {
                self.fps_cap = Fps::F24;
                self.res_cap = self.res_cap.min(Resolution::R480p);
            }
            TrimLevel::Low => {
                self.fps_cap = Fps::F24;
                self.res_cap = self
                    .res_cap
                    .step_down()
                    .unwrap_or(self.mem.min_resolution)
                    .max(self.mem.min_resolution);
            }
            TrimLevel::Moderate => {
                self.fps_cap = match self.fps_cap {
                    Fps::F60 => Fps::F48,
                    Fps::F48 | Fps::F30 if drop_pct > self.mem.drop_react_pct => Fps::F24,
                    cap => cap,
                };
            }
            TrimLevel::Normal => unreachable!("tighten is only called under pressure"),
        }
    }

    fn relax(&mut self) {
        if self.res_cap < Resolution::R1440p {
            self.res_cap = self.res_cap.step_up().unwrap_or(Resolution::R1440p);
            return;
        }
        self.fps_cap = match (self.fps_cap, self.preferred_fps) {
            (Fps::F24, pref) if pref >= Fps::F30 => Fps::F30,
            (Fps::F30, pref) if pref >= Fps::F48 => Fps::F48,
            (Fps::F48, pref) if pref >= Fps::F60 => Fps::F60,
            (cap, _) => cap,
        };
    }
}

impl Abr for Hybrid {
    fn choose(&mut self, ctx: &AbrContext<'_>) -> Representation {
        self.update_memory_caps(ctx);
        let fps = if self.fps_cap.value() < self.preferred_fps.value() {
            self.fps_cap
        } else {
            self.preferred_fps
        };
        // The bandwidth lever plans directly on the capped ladder.
        let pred = self.predictor.predict(ctx);
        let pick = lookahead_pick(ctx, &self.mpc, fps, pred);
        let res = pick
            .resolution
            .min(self.res_cap)
            .max(self.mem.min_resolution);
        ctx.manifest.representation(res, fps).unwrap_or(pick)
    }

    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn state_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("fps_cap".into(), self.fps_cap.to_value()),
            ("res_cap".into(), self.res_cap.to_value()),
            ("normal_streak".into(), self.normal_streak.to_value()),
            ("predictor".into(), self.predictor.state_value()),
        ])
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::de::Error> {
        let field = |name: &str| {
            state
                .get(name)
                .ok_or_else(|| serde::de::Error::custom(format!("Hybrid state missing {name}")))
        };
        self.fps_cap = Fps::from_value(field("fps_cap")?)?;
        self.res_cap = Resolution::from_value(field("res_cap")?)?;
        self.normal_streak = u32::from_value(field("normal_streak")?)?;
        self.predictor.restore(field("predictor")?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_support::*;

    #[test]
    fn memory_pressure_degrades_fps_not_bitrate() {
        let m = manifest();
        let mut abr = Hybrid::new(Fps::F60);
        // Rich network, Moderate memory pressure: frame rate steps down,
        // resolution stays at the top of the capped ladder.
        let c = ctx(&m, 50.0, Some(200.0), TrimLevel::Moderate);
        let r = abr.choose(&c);
        assert_eq!(r.fps, Fps::F48, "memory lever is the frame rate");
        assert_eq!(r.resolution, Resolution::R1440p, "bitrate untouched");
    }

    #[test]
    fn network_pressure_degrades_bitrate_not_fps() {
        let m = manifest();
        let mut abr = Hybrid::new(Fps::F60);
        // Starved link, no memory pressure: bitrate collapses, 60 fps kept.
        let c = ctx(&m, 1.0, Some(1.0), TrimLevel::Normal);
        let r = abr.choose(&c);
        assert_eq!(r.fps, Fps::F60, "network pressure leaves fps alone");
        assert!(r.resolution <= Resolution::R360p, "bitrate is the network lever");
    }

    #[test]
    fn joint_pressure_pulls_both_levers() {
        let m = manifest();
        let mut abr = Hybrid::new(Fps::F60);
        let mut c = ctx(&m, 2.0, Some(2.0), TrimLevel::Moderate);
        c.recent_drop_pct = 20.0;
        let r = abr.choose(&c);
        assert!(r.fps <= Fps::F48, "memory degraded fps, got {:?}", r.fps);
        assert!(
            r.resolution <= Resolution::R480p,
            "network degraded bitrate, got {}",
            r.resolution
        );
    }

    #[test]
    fn capped_fps_ladder_is_cheaper_than_sixty() {
        let m = manifest();
        // Under Critical pressure the planner prices 24 fps rungs, which
        // cost ~60% of the 60 fps ones — the same link sustains a higher
        // resolution than the same planner forced to 60 fps.
        let mut hybrid = Hybrid::new(Fps::F60);
        let c = ctx(&m, 20.0, Some(4.0), TrimLevel::Critical);
        let r = hybrid.choose(&c);
        assert_eq!(r.fps, Fps::F24);
        assert!(r.resolution <= Resolution::R480p, "critical caps resolution");
    }

    #[test]
    fn recovery_mirrors_memory_aware_stickiness() {
        let m = manifest();
        let mut abr = Hybrid::new(Fps::F60);
        abr.choose(&ctx(&m, 50.0, Some(100.0), TrimLevel::Critical));
        // Patience is 3: two Normal segments keep the caps.
        for _ in 0..2 {
            let r = abr.choose(&ctx(&m, 50.0, Some(100.0), TrimLevel::Normal));
            assert_eq!(r.fps, Fps::F24);
        }
        // Relaxation restores resolution before frame rate.
        let r = abr.choose(&ctx(&m, 50.0, Some(100.0), TrimLevel::Normal));
        assert_eq!(r.fps, Fps::F24);
        assert_eq!(r.resolution, Resolution::R720p);
        for _ in 0..30 {
            abr.choose(&ctx(&m, 50.0, Some(100.0), TrimLevel::Normal));
        }
        let r = abr.choose(&ctx(&m, 50.0, Some(100.0), TrimLevel::Normal));
        assert_eq!(r.fps, Fps::F60);
        assert_eq!(r.resolution, Resolution::R1440p);
    }

    #[test]
    fn snapshot_round_trip_restores_decisions() {
        let m = manifest();
        let mut original = Hybrid::new(Fps::F60);
        // Build up cap state and predictor history.
        for (t, trim) in [
            (20.0, TrimLevel::Normal),
            (3.0, TrimLevel::Moderate),
            (15.0, TrimLevel::Critical),
            (6.0, TrimLevel::Normal),
        ] {
            original.choose(&ctx(&m, 25.0, Some(t), trim));
        }
        let state = original.state_value();
        let mut restored = Hybrid::new(Fps::F60);
        restored.restore_state(&state).unwrap();
        for (t, trim) in [
            (12.0, TrimLevel::Normal),
            (3.0, TrimLevel::Normal),
            (30.0, TrimLevel::Moderate),
            (8.0, TrimLevel::Normal),
        ] {
            let c = ctx(&m, 18.0, Some(t), trim);
            assert_eq!(original.choose(&c), restored.choose(&c));
        }
    }

    #[test]
    fn restore_rejects_malformed_state() {
        let mut abr = Hybrid::new(Fps::F60);
        assert!(abr.restore_state(&serde::Value::Null).is_err());
    }
}
