//! BOLA: Lyapunov-drift-plus-penalty bitrate adaptation \[35\].
//!
//! BOLA-BASIC: for buffer level `Q` (in segments) pick the rung `m`
//! maximizing `(V·(v_m + γ·p) − Q) / S_m`, where `v_m = ln(S_m / S_min)` is
//! the utility of rung `m`, `S_m` its segment size, `p` the segment
//! duration, and `V`, `γ` control the buffer/utility trade-off. Network-only
//! — no device awareness — used as the strongest classic baseline in the
//! ABR ablation.

use crate::context::{Abr, AbrContext};
use mvqoe_video::{Fps, Representation};

/// BOLA-BASIC at a fixed frame rate.
#[derive(Debug, Clone, Copy)]
pub struct Bola {
    /// Frame rate whose ladder is used.
    pub fps: Fps,
    /// Lyapunov control parameter `V` (bigger = favor utility over buffer).
    pub v: f64,
    /// Rebuffer-aversion weight `γ·p`.
    pub gamma_p: f64,
}

impl Bola {
    /// Parameters tuned for a 60 s buffer of 4 s segments: the knee sits
    /// around half occupancy.
    pub fn new(fps: Fps) -> Bola {
        Bola {
            fps,
            v: 2.0,
            gamma_p: 5.0,
        }
    }
}

impl Abr for Bola {
    fn choose(&mut self, ctx: &AbrContext<'_>) -> Representation {
        let ladder = ctx.ladder_at(self.fps);
        assert!(!ladder.is_empty(), "manifest has no rungs at {}", self.fps);
        let seg_s = ctx.manifest.segment_seconds;
        let q_segments = ctx.buffer_seconds / seg_s;
        let s_min = ladder[0].bitrate_kbps as f64;
        let mut best = ladder[0];
        let mut best_score = f64::NEG_INFINITY;
        for rep in ladder {
            let s_m = rep.bitrate_kbps as f64;
            let utility = (s_m / s_min).ln();
            let score = (self.v * (utility + self.gamma_p) - q_segments) / s_m;
            if score > best_score {
                best_score = score;
                best = rep;
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "bola"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_support::*;
    use mvqoe_kernel::TrimLevel;
    use mvqoe_video::Resolution;

    #[test]
    fn low_buffer_picks_low_rung() {
        let m = manifest();
        let mut abr = Bola::new(Fps::F30);
        let c = ctx(&m, 0.0, None, TrimLevel::Normal);
        assert_eq!(abr.choose(&c).resolution, Resolution::R240p);
    }

    #[test]
    fn quality_is_monotone_in_buffer() {
        let m = manifest();
        let mut abr = Bola::new(Fps::F30);
        let mut last = 0;
        for occ in [0.0, 8.0, 16.0, 24.0, 36.0, 48.0, 60.0] {
            let c = ctx(&m, occ, None, TrimLevel::Normal);
            let b = abr.choose(&c).bitrate_kbps;
            assert!(b >= last, "occ {occ}: {b} < {last}");
            last = b;
        }
    }

    #[test]
    fn full_buffer_reaches_a_high_rung() {
        let m = manifest();
        let mut abr = Bola::new(Fps::F30);
        let c = ctx(&m, 58.0, None, TrimLevel::Normal);
        assert!(abr.choose(&c).resolution >= Resolution::R1080p);
    }

    #[test]
    fn ignores_memory_pressure() {
        let m = manifest();
        let mut abr = Bola::new(Fps::F60);
        let a = abr.choose(&ctx(&m, 40.0, None, TrimLevel::Normal));
        let b = abr.choose(&ctx(&m, 40.0, None, TrimLevel::Critical));
        assert_eq!(a, b);
    }
}
