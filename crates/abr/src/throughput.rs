//! Throughput-based adaptation (dash.js default style).
//!
//! Picks the highest rung whose bitrate fits under the context's shared
//! conservative bandwidth prediction
//! ([`AbrContext::predicted_throughput_mbps`]). Blind to device state.

use crate::context::{Abr, AbrContext};
use mvqoe_video::{Fps, Representation};

/// Rate-based ABR at a fixed frame rate.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputBased {
    /// Frame rate whose ladder is used.
    pub fps: Fps,
}

impl ThroughputBased {
    /// dash.js-like defaults.
    pub fn new(fps: Fps) -> ThroughputBased {
        ThroughputBased { fps }
    }
}

impl Abr for ThroughputBased {
    fn choose(&mut self, ctx: &AbrContext<'_>) -> Representation {
        let lowest = ctx
            .lowest(self.fps)
            .expect("manifest has no rungs at this fps");
        match ctx.predicted_throughput_mbps() {
            None => lowest, // conservative first segment
            Some(rate) => ctx.best_under_rate(self.fps, rate).unwrap_or(lowest),
        }
    }

    fn name(&self) -> &'static str {
        "throughput"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_support::*;
    use mvqoe_kernel::TrimLevel;
    use mvqoe_video::Resolution;

    #[test]
    fn first_segment_is_conservative() {
        let m = manifest();
        let mut abr = ThroughputBased::new(Fps::F30);
        let c = ctx(&m, 0.0, None, TrimLevel::Normal);
        assert_eq!(abr.choose(&c).resolution, Resolution::R240p);
    }

    #[test]
    fn rate_maps_to_rung() {
        let m = manifest();
        let mut abr = ThroughputBased::new(Fps::F30);
        // 0.9 × 10 = 9 Mbit/s → 1080p30 (8 Mbit/s) fits, 1440p30 (16) not.
        let c = ctx(&m, 30.0, Some(10.0), TrimLevel::Normal);
        assert_eq!(abr.choose(&c).resolution, Resolution::R1080p);
        // Plenty of rate → top rung.
        let c = ctx(&m, 30.0, Some(100.0), TrimLevel::Normal);
        assert_eq!(abr.choose(&c).resolution, Resolution::R1440p);
        // Starved → lowest.
        let c = ctx(&m, 30.0, Some(0.2), TrimLevel::Normal);
        assert_eq!(abr.choose(&c).resolution, Resolution::R240p);
    }

    #[test]
    fn choice_is_monotone_in_rate() {
        let m = manifest();
        let mut abr = ThroughputBased::new(Fps::F60);
        let mut last = 0;
        for rate in [0.5, 1.0, 3.0, 6.0, 10.0, 20.0, 50.0] {
            let c = ctx(&m, 30.0, Some(rate), TrimLevel::Normal);
            let b = abr.choose(&c).bitrate_kbps;
            assert!(b >= last, "rate {rate}");
            last = b;
        }
    }
}
