//! BBA-style buffer-based adaptation \[27\].
//!
//! Maps buffer occupancy linearly onto the ladder between a reservoir and a
//! cushion: below the reservoir always pick the lowest rung; above the
//! cushion always the highest; in between, interpolate. Pure network/buffer
//! policy — completely blind to memory pressure, which is exactly the gap
//! the paper's §7 calls out.

use crate::context::{Abr, AbrContext};
use mvqoe_video::{Fps, Representation};

/// Buffer-based ABR at a fixed frame rate.
#[derive(Debug, Clone, Copy)]
pub struct BufferBased {
    /// Frame rate whose ladder is used.
    pub fps: Fps,
    /// Below this occupancy (s): lowest rung.
    pub reservoir: f64,
    /// Above this occupancy (s): highest rung.
    pub cushion: f64,
}

impl BufferBased {
    /// The standard configuration for a 60 s buffer.
    pub fn new(fps: Fps) -> BufferBased {
        BufferBased {
            fps,
            reservoir: 10.0,
            cushion: 45.0,
        }
    }
}

impl Abr for BufferBased {
    fn choose(&mut self, ctx: &AbrContext<'_>) -> Representation {
        let ladder = ctx.ladder_at(self.fps);
        assert!(!ladder.is_empty(), "manifest has no rungs at {}", self.fps);
        let occ = ctx.buffer_seconds;
        let idx = if occ <= self.reservoir {
            0
        } else if occ >= self.cushion {
            ladder.len() - 1
        } else {
            let f = (occ - self.reservoir) / (self.cushion - self.reservoir);
            ((ladder.len() - 1) as f64 * f).floor() as usize
        };
        ladder[idx]
    }

    fn name(&self) -> &'static str {
        "buffer-based"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_support::*;
    use mvqoe_kernel::TrimLevel;
    use mvqoe_video::Resolution;

    #[test]
    fn empty_buffer_picks_lowest() {
        let m = manifest();
        let mut abr = BufferBased::new(Fps::F30);
        let c = ctx(&m, 2.0, None, TrimLevel::Normal);
        assert_eq!(abr.choose(&c).resolution, Resolution::R240p);
    }

    #[test]
    fn full_buffer_picks_highest() {
        let m = manifest();
        let mut abr = BufferBased::new(Fps::F30);
        let c = ctx(&m, 58.0, None, TrimLevel::Normal);
        assert_eq!(abr.choose(&c).resolution, Resolution::R1440p);
    }

    #[test]
    fn mid_buffer_is_monotone() {
        let m = manifest();
        let mut abr = BufferBased::new(Fps::F30);
        let mut last = 0;
        for occ in [5.0, 15.0, 25.0, 35.0, 50.0] {
            let c = ctx(&m, occ, None, TrimLevel::Normal);
            let b = abr.choose(&c).bitrate_kbps;
            assert!(b >= last, "occupancy {occ}");
            last = b;
        }
    }

    #[test]
    fn ignores_memory_pressure() {
        // The baseline's defining flaw: Critical pressure changes nothing.
        let m = manifest();
        let mut abr = BufferBased::new(Fps::F60);
        let normal = abr.choose(&ctx(&m, 58.0, None, TrimLevel::Normal));
        let critical = abr.choose(&ctx(&m, 58.0, None, TrimLevel::Critical));
        assert_eq!(normal, critical);
    }
}
