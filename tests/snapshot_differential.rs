//! Differential tests for the snapshot/fork/replay engine.
//!
//! The engine's contract is *exactness*: a session snapshotted at an
//! arbitrary time `t`, serialized to JSON, parsed back and restored must
//! continue into byte-for-byte the same outcome as the session that was
//! never interrupted — same stats, same kernel counters, same trace event
//! stream — on both the event-skipping engine and the dense 1 ms tick
//! engine. Likewise N branches forked from one snapshot under the *same*
//! policy must be identical to each other and to the parent continuation;
//! only turning a policy knob may diverge them. Randomized cells (device ×
//! pressure × encoding × engine × cut point) probe the whole space instead
//! of a blessed configuration.

use mvqoe_abr::{Abr, FixedAbr};
use mvqoe_core::{
    run_session, PressureMode, Session, SessionConfig, SessionOutcome, Snapshot,
};
use mvqoe_device::DeviceProfile;
use mvqoe_kernel::{Pages, ProcKind, TrimLevel};
use mvqoe_sim::SimTime;
use mvqoe_video::{Fps, Manifest, Resolution};
use proptest::prelude::*;

/// One randomized session cell: where it runs, under what pressure, which
/// engine, and where the snapshot cut lands.
#[derive(Debug, Clone)]
struct Cell {
    device: u8,
    pressure: u8,
    fps60: bool,
    dense: bool,
    seed: u64,
    cut_frac: f64,
}

fn cell_strategy() -> impl Strategy<Value = Cell> {
    (0..2u8, 0..4u8, any::<bool>(), any::<bool>(), 0..1_000u64, 0.05..0.95f64).prop_map(
        |(device, pressure, fps60, dense, seed, cut_frac)| Cell {
            device,
            pressure,
            fps60,
            dense,
            seed,
            cut_frac,
        },
    )
}

const VIDEO_SECS: f64 = 14.0;

fn config(c: &Cell) -> SessionConfig {
    let device = match c.device {
        0 => DeviceProfile::nokia1(),
        _ => DeviceProfile::nexus5(),
    };
    let pressure = match c.pressure {
        0 => PressureMode::None,
        1 => PressureMode::Synthetic(TrimLevel::Moderate),
        2 => PressureMode::Synthetic(TrimLevel::Critical),
        _ => PressureMode::Organic(4),
    };
    let mut cfg = SessionConfig::paper_default(device, pressure, c.seed);
    cfg.video_secs = VIDEO_SECS;
    cfg.dense_ticks = c.dense;
    // Record the full trace so the fingerprint covers the event stream,
    // not just the aggregate stats.
    cfg.record_trace = true;
    cfg
}

fn abr_for(c: &Cell, cfg: &SessionConfig) -> FixedAbr {
    let manifest = Manifest::full_ladder(cfg.genre, cfg.video_secs);
    let fps = if c.fps60 { Fps::F60 } else { Fps::F30 };
    let rep = manifest
        .representation(Resolution::R480p, fps)
        .expect("480p is on the full ladder");
    FixedAbr::new(rep)
}

/// Everything a restore could corrupt, as one string: player stats and
/// series, kernel counters, clock, and the recorded trace stream.
fn fingerprint(out: &SessionOutcome) -> String {
    format!(
        "stats={} kills={:?} trim={:?} lmkd={:?} reps={:?} vmstat={:?} final={:?} now={:?} \
         events={:?} preempt={:?} instants={:?}",
        serde_json::to_string(&out.stats).expect("stats serialize"),
        out.kill_series,
        out.trim_series,
        out.lmkd_cpu_series,
        out.rep_history,
        out.machine.mm.vmstat(),
        out.final_trim,
        out.machine.now(),
        out.machine.trace.events(),
        out.machine.trace.preemptions(),
        out.machine.trace.instants(),
    )
}

/// The cut point for a cell: a fraction of the video into the session.
fn cut_at(session: &Session, c: &Cell) -> SimTime {
    SimTime::from_secs_f64(session.now().as_secs_f64() + c.cut_frac * VIDEO_SECS)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Snapshot → JSON → parse → restore → continue is invisible: the
    /// restored run's outcome is byte-identical to the uninterrupted one.
    #[test]
    fn snapshot_round_trip_is_invisible(c in cell_strategy()) {
        let cfg = config(&c);
        let uninterrupted = fingerprint(&run_session(&cfg, &mut abr_for(&c, &cfg)));

        let mut abr = abr_for(&c, &cfg);
        let mut session = Session::start(cfg.clone());
        let cut = cut_at(&session, &c);
        session.run_until(&mut abr, cut);

        // Full serialization round trip, not just an in-memory clone: any
        // state a snapshot forgets to carry fails here.
        let text = serde_json::to_string(&session.snapshot(&abr)).expect("snapshot serializes");
        let snap: Snapshot = serde_json::from_str(&text).expect("snapshot parses");

        let mut abr2 = abr_for(&c, &cfg);
        let mut restored = Session::restore(&snap, &mut abr2).expect("fresh snapshot restores");
        restored.run_until(&mut abr2, SimTime::MAX);
        prop_assert_eq!(uninterrupted, fingerprint(&restored.finish(None)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Same-policy forks are exact: every branch forked from one prefix
    /// under an identical policy finishes byte-identical to its siblings
    /// and to the parent's own continuation.
    #[test]
    fn same_policy_forks_match_each_other_and_the_parent(c in cell_strategy()) {
        let cfg = config(&c);
        let mut abr = abr_for(&c, &cfg);
        let mut parent = Session::start(cfg.clone());
        let cut = cut_at(&parent, &c);
        parent.run_until(&mut abr, cut);

        let mut prints = Vec::new();
        for _ in 0..3 {
            let mut branch_abr = abr_for(&c, &cfg);
            let mut branch = parent.fork(&abr, &mut branch_abr).expect("fork restores");
            branch.run_until(&mut branch_abr, SimTime::MAX);
            prints.push(fingerprint(&branch.finish(None)));
        }

        parent.run_until(&mut abr, SimTime::MAX);
        prints.push(fingerprint(&parent.finish(None)));

        for p in &prints[1..] {
            prop_assert_eq!(&prints[0], p, "all branches and the parent must agree");
        }
    }
}

/// Divergence comes only from the knob: an untouched fork replays the
/// parent exactly, while a fork whose machine takes one extra cached app
/// at the fork point visibly departs (its kernel counters register the
/// spawn even when QoE survives).
#[test]
fn forks_diverge_only_when_a_policy_knob_differs() {
    let c = Cell {
        device: 0,
        pressure: 1,
        fps60: false,
        dense: false,
        seed: 11,
        cut_frac: 0.4,
    };
    let cfg = config(&c);
    let mut abr = abr_for(&c, &cfg);
    let mut parent = Session::start(cfg.clone());
    let cut = cut_at(&parent, &c);
    parent.run_until(&mut abr, cut);

    let finish = |mut s: Session, abr: &mut FixedAbr| {
        s.run_until(abr, SimTime::MAX);
        fingerprint(&s.finish(None))
    };

    let mut abr_plain = abr_for(&c, &cfg);
    let plain = parent.fork(&abr, &mut abr_plain).expect("fork restores");
    let plain_print = finish(plain, &mut abr_plain);

    let mut abr_knob = abr_for(&c, &cfg);
    let mut knobbed = parent.fork(&abr, &mut abr_knob).expect("fork restores");
    knobbed.machine_mut().add_process(
        "cf.bgapp",
        ProcKind::Cached,
        Pages::from_mib(200),
        Pages::from_mib(50),
        Pages::from_mib(100),
        0.3,
    );
    let knobbed_print = finish(knobbed, &mut abr_knob);

    parent.run_until(&mut abr, SimTime::MAX);
    let parent_print = fingerprint(&parent.finish(None));

    assert_eq!(plain_print, parent_print, "an untouched fork is an exact replay");
    assert_ne!(knobbed_print, parent_print, "the knob must leave a visible mark");
}
