//! Structural validation of the Chrome trace export on a real session.
//!
//! Runs the paper's §5 scenario — 480p @ 60 FPS on the Nokia 1 under
//! Moderate synthetic pressure, full event recording on — and checks that
//! the exported Chrome trace-event JSON is well formed: it parses, its
//! timestamps never go backwards, every tid that appears in an event has
//! `thread_name` metadata, and the tracks the paper's analysis leans on
//! (kswapd0, mmcqd, the MediaCodec decoder, the counter tracks) are all
//! present.

use mvqoe::prelude::*;
use mvqoe_trace::chrome_trace_json;
use serde_json::Value;
use std::collections::{BTreeMap, BTreeSet};

fn traced_session() -> SessionOutcome {
    let mut cfg = SessionConfig::paper_default(
        DeviceProfile::nokia1(),
        PressureMode::Synthetic(TrimLevel::Moderate),
        derive_seed(42, "perfetto-export-test", 0, 0),
    );
    cfg.video_secs = 30.0;
    cfg.record_trace = true;
    let manifest = Manifest::full_ladder(Genre::Travel, cfg.video_secs);
    let rep = manifest.representation(Resolution::R480p, Fps::F60).unwrap();
    let mut abr = FixedAbr::new(rep);
    run_session(&cfg, &mut abr)
}

#[test]
fn real_session_trace_is_structurally_valid() {
    let out = traced_session();
    let json = chrome_trace_json(&out.machine.trace);
    let v: Value = serde_json::from_str(&json).expect("export is valid JSON");

    assert_eq!(
        v.get("displayTimeUnit").and_then(Value::as_str),
        Some("ms")
    );
    let events = v
        .get("traceEvents")
        .and_then(Value::as_seq)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut last_ts = -1.0f64;
    let mut named_tids = BTreeSet::new();
    let mut event_tids = BTreeSet::new();
    let mut thread_names = BTreeSet::new();
    let mut counters = BTreeSet::new();
    let mut phases: BTreeMap<String, u64> = BTreeMap::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Value::as_str).unwrap_or("").to_string();
        *phases.entry(ph.clone()).or_insert(0) += 1;
        let ts = ev.get("ts").and_then(Value::as_f64).expect("numeric ts");
        assert!(ts >= last_ts, "timestamps must be non-decreasing");
        last_ts = ts;
        let tid = ev.get("tid").and_then(Value::as_u64);
        match ph.as_str() {
            "M" => {
                if ev.get("name").and_then(Value::as_str) == Some("thread_name") {
                    named_tids.insert(tid.expect("thread_name has tid"));
                    let name = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Value::as_str)
                        .expect("thread_name has args.name");
                    thread_names.insert(name.to_string());
                }
            }
            "C" => {
                let name = ev.get("name").and_then(Value::as_str).expect("counter name");
                counters.insert(name.to_string());
                ev.get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Value::as_f64)
                    .expect("counter has args.value");
            }
            "X" => {
                event_tids.insert(tid.expect("slice has tid"));
                let dur = ev.get("dur").and_then(Value::as_f64).expect("slice dur");
                assert!(dur >= 0.0);
            }
            "i" => {
                if let Some(tid) = tid {
                    event_tids.insert(tid);
                }
            }
            _ => {}
        }
    }

    // Every tid that carries an event has thread-name metadata.
    for tid in &event_tids {
        assert!(named_tids.contains(tid), "tid {tid} has no thread_name");
    }

    // The §5 cast is on stage.
    for name in ["kswapd0", "mmcqd/0", "MediaCodec", "lmkd"] {
        assert!(thread_names.contains(name), "missing thread track {name}");
    }
    // The counter tracks the Perfetto view plots.
    for name in ["lmkd_cpu_pct", "rendered_fps", "free_mib", "zram_mib"] {
        assert!(counters.contains(name), "missing counter track {name}");
    }
    // Slices and counter samples are actually present in bulk.
    assert!(phases.get("X").copied().unwrap_or(0) > 100, "{phases:?}");
    assert!(phases.get("C").copied().unwrap_or(0) > 50, "{phases:?}");
}

#[test]
fn attributed_session_exports_paired_flow_arrows() {
    // Same §5 scenario, with the causal attribution engine on: the Nokia 1
    // under Moderate pressure falters for memory reasons, and each falter
    // must show up as a ph:"s"/ph:"f" flow pair blaming a memory cause.
    // Cell 3 is a seed where this scenario visibly rebuffers (not just
    // drops frames) — the engine must blame the stall on a memory cause.
    let mut cfg = SessionConfig::paper_default(
        DeviceProfile::nokia1(),
        PressureMode::Synthetic(TrimLevel::Moderate),
        derive_seed(42, "perfetto-export-test", 3, 0),
    );
    cfg.video_secs = 48.0;
    cfg.record_trace = true;
    cfg.attribution = true;
    // Buffer-based ABR (network-only, device-blind): under Moderate
    // pressure on the Nokia 1 it runs the buffer dry and rebuffers.
    let mut abr = BufferBased::new(Fps::F60);
    let out = run_session(&cfg, &mut abr);

    let report = out.attribution.as_ref().expect("attribution was enabled");
    assert!(
        report.memory_rebuffer_us() > 0,
        "this scenario rebuffers for memory reasons; report: {report:?}"
    );
    assert!(!report.records.is_empty());

    let json = chrome_trace_json(&out.machine.trace);
    let v: Value = serde_json::from_str(&json).expect("export is valid JSON");
    let events = v.get("traceEvents").and_then(Value::as_seq).unwrap();

    let mut starts: BTreeMap<u64, String> = BTreeMap::new();
    let mut finishes: BTreeMap<u64, String> = BTreeMap::new();
    let mut rebuffer_instant_threaded = false;
    for ev in events {
        let ph = ev.get("ph").and_then(Value::as_str).unwrap_or("");
        let name = ev.get("name").and_then(Value::as_str).unwrap_or("");
        if ph == "s" || ph == "f" {
            assert_eq!(
                ev.get("cat").and_then(Value::as_str),
                Some("attribution"),
                "flow events carry the attribution category"
            );
            assert!(name.starts_with("blame:"), "flow name {name:?}");
            let id = ev.get("id").and_then(Value::as_u64).expect("flow id");
            if ph == "s" {
                starts.insert(id, name.to_string());
            } else {
                assert_eq!(
                    ev.get("bp").and_then(Value::as_str),
                    Some("e"),
                    "finish binds to the enclosing slice"
                );
                finishes.insert(id, name.to_string());
            }
        }
        // Satellite check: rebuffer boundary instants are thread-scoped
        // (they used to be emitted with no thread).
        if ph == "i" && (name == "rebuffer_start" || name == "rebuffer_end") {
            assert_eq!(
                ev.get("s").and_then(Value::as_str),
                Some("t"),
                "{name} must be scoped to the player thread"
            );
            rebuffer_instant_threaded = true;
        }
    }
    assert!(!starts.is_empty(), "no flow arrows exported");
    assert_eq!(starts, finishes, "every s must pair with an f by id + name");
    assert!(rebuffer_instant_threaded, "no rebuffer instants in the trace");
    // At least one arrow blames a memory cause for a rebuffer.
    assert!(
        starts
            .values()
            .any(|n| n.ends_with("->rebuffer_start")
                && ["direct_reclaim", "lmkd_kill", "oom_kill", "major_fault_burst", "zram_thrash"]
                    .iter()
                    .any(|c| n.contains(c))),
        "no memory-blamed rebuffer arrow: {starts:?}"
    );
}

#[test]
fn detail_gate_keeps_untraced_sessions_lean() {
    // The default config records no scheduler events, so the export should
    // contain metadata and counter samples but no slices.
    let mut cfg = SessionConfig::paper_default(
        DeviceProfile::nokia1(),
        PressureMode::Synthetic(TrimLevel::Moderate),
        derive_seed(42, "perfetto-export-test", 1, 0),
    );
    cfg.video_secs = 12.0;
    let manifest = Manifest::full_ladder(Genre::Travel, cfg.video_secs);
    let rep = manifest.representation(Resolution::R480p, Fps::F60).unwrap();
    let mut abr = FixedAbr::new(rep);
    let out = run_session(&cfg, &mut abr);
    let json = chrome_trace_json(&out.machine.trace);
    let v: Value = serde_json::from_str(&json).unwrap();
    let events = v.get("traceEvents").and_then(Value::as_seq).unwrap();
    assert!(events
        .iter()
        .all(|e| e.get("ph").and_then(Value::as_str) != Some("X")));
    assert!(events
        .iter()
        .any(|e| e.get("ph").and_then(Value::as_str) == Some("C")));
}
