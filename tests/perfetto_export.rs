//! Structural validation of the Chrome trace export on a real session.
//!
//! Runs the paper's §5 scenario — 480p @ 60 FPS on the Nokia 1 under
//! Moderate synthetic pressure, full event recording on — and checks that
//! the exported Chrome trace-event JSON is well formed: it parses, its
//! timestamps never go backwards, every tid that appears in an event has
//! `thread_name` metadata, and the tracks the paper's analysis leans on
//! (kswapd0, mmcqd, the MediaCodec decoder, the counter tracks) are all
//! present.

use mvqoe::prelude::*;
use mvqoe_trace::chrome_trace_json;
use serde_json::Value;
use std::collections::{BTreeMap, BTreeSet};

fn traced_session() -> SessionOutcome {
    let mut cfg = SessionConfig::paper_default(
        DeviceProfile::nokia1(),
        PressureMode::Synthetic(TrimLevel::Moderate),
        derive_seed(42, "perfetto-export-test", 0, 0),
    );
    cfg.video_secs = 30.0;
    cfg.record_trace = true;
    let manifest = Manifest::full_ladder(Genre::Travel, cfg.video_secs);
    let rep = manifest.representation(Resolution::R480p, Fps::F60).unwrap();
    let mut abr = FixedAbr::new(rep);
    run_session(&cfg, &mut abr)
}

#[test]
fn real_session_trace_is_structurally_valid() {
    let out = traced_session();
    let json = chrome_trace_json(&out.machine.trace);
    let v: Value = serde_json::from_str(&json).expect("export is valid JSON");

    assert_eq!(
        v.get("displayTimeUnit").and_then(Value::as_str),
        Some("ms")
    );
    let events = v
        .get("traceEvents")
        .and_then(Value::as_seq)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut last_ts = -1.0f64;
    let mut named_tids = BTreeSet::new();
    let mut event_tids = BTreeSet::new();
    let mut thread_names = BTreeSet::new();
    let mut counters = BTreeSet::new();
    let mut phases: BTreeMap<String, u64> = BTreeMap::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Value::as_str).unwrap_or("").to_string();
        *phases.entry(ph.clone()).or_insert(0) += 1;
        let ts = ev.get("ts").and_then(Value::as_f64).expect("numeric ts");
        assert!(ts >= last_ts, "timestamps must be non-decreasing");
        last_ts = ts;
        let tid = ev.get("tid").and_then(Value::as_u64);
        match ph.as_str() {
            "M" => {
                if ev.get("name").and_then(Value::as_str) == Some("thread_name") {
                    named_tids.insert(tid.expect("thread_name has tid"));
                    let name = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Value::as_str)
                        .expect("thread_name has args.name");
                    thread_names.insert(name.to_string());
                }
            }
            "C" => {
                let name = ev.get("name").and_then(Value::as_str).expect("counter name");
                counters.insert(name.to_string());
                ev.get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Value::as_f64)
                    .expect("counter has args.value");
            }
            "X" => {
                event_tids.insert(tid.expect("slice has tid"));
                let dur = ev.get("dur").and_then(Value::as_f64).expect("slice dur");
                assert!(dur >= 0.0);
            }
            "i" => {
                if let Some(tid) = tid {
                    event_tids.insert(tid);
                }
            }
            _ => {}
        }
    }

    // Every tid that carries an event has thread-name metadata.
    for tid in &event_tids {
        assert!(named_tids.contains(tid), "tid {tid} has no thread_name");
    }

    // The §5 cast is on stage.
    for name in ["kswapd0", "mmcqd/0", "MediaCodec", "lmkd"] {
        assert!(thread_names.contains(name), "missing thread track {name}");
    }
    // The counter tracks the Perfetto view plots.
    for name in ["lmkd_cpu_pct", "rendered_fps", "free_mib", "zram_mib"] {
        assert!(counters.contains(name), "missing counter track {name}");
    }
    // Slices and counter samples are actually present in bulk.
    assert!(phases.get("X").copied().unwrap_or(0) > 100, "{phases:?}");
    assert!(phases.get("C").copied().unwrap_or(0) > 50, "{phases:?}");
}

#[test]
fn detail_gate_keeps_untraced_sessions_lean() {
    // The default config records no scheduler events, so the export should
    // contain metadata and counter samples but no slices.
    let mut cfg = SessionConfig::paper_default(
        DeviceProfile::nokia1(),
        PressureMode::Synthetic(TrimLevel::Moderate),
        derive_seed(42, "perfetto-export-test", 1, 0),
    );
    cfg.video_secs = 12.0;
    let manifest = Manifest::full_ladder(Genre::Travel, cfg.video_secs);
    let rep = manifest.representation(Resolution::R480p, Fps::F60).unwrap();
    let mut abr = FixedAbr::new(rep);
    let out = run_session(&cfg, &mut abr);
    let json = chrome_trace_json(&out.machine.trace);
    let v: Value = serde_json::from_str(&json).unwrap();
    let events = v.get("traceEvents").and_then(Value::as_seq).unwrap();
    assert!(events
        .iter()
        .all(|e| e.get("ph").and_then(Value::as_str) != Some("X")));
    assert!(events
        .iter()
        .any(|e| e.get("ph").and_then(Value::as_str) == Some("C")));
}
