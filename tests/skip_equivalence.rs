//! The event-driven skip must be invisible: for *any* workload schedule,
//! jumping across provably-idle spans with `Machine::advance_until` yields
//! exactly the state that dense 1 ms stepping yields — same `VmStat`, same
//! per-thread state times, same trace event stream, same clock.
//!
//! This is the load-bearing property behind the whole engine; the golden
//! tests check it on the paper's grids, this one checks it on randomized
//! schedules that mix CPU bursts, allocation spikes, page touching and
//! long gaps.

use mvqoe_device::{DeviceProfile, Machine};
use mvqoe_kernel::{Pages, ProcKind, ProcessId};
use mvqoe_sched::{SchedClass, ThreadId};
use mvqoe_sim::{SimDuration, SimRng};
use proptest::prelude::*;

/// One workload action, applied after a gap of quiet machine time.
#[derive(Debug, Clone)]
enum Op {
    /// CPU burst on the app thread.
    Work { us: u32 },
    /// Heap growth (may trigger reclaim, kills, writeback).
    Alloc { mib: u8 },
    /// Re-touch swapped/cold pages (may trigger zRAM swap-in work).
    Touch { mib: u8 },
    /// Nothing: a pure gap.
    Quiet,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (200..30_000u32).prop_map(|us| Op::Work { us }),
        2 => (1..24u8).prop_map(|mib| Op::Alloc { mib }),
        2 => (1..16u8).prop_map(|mib| Op::Touch { mib }),
        2 => Just(Op::Quiet),
    ]
}

/// A schedule: (gap in ms before the op fires, op).
fn schedule_strategy() -> impl Strategy<Value = Vec<(u16, Op)>> {
    prop::collection::vec((1..400u16, op_strategy()), 1..24)
}

fn build(seed: u64) -> (Machine, ProcessId, ThreadId) {
    let mut rng = SimRng::new(seed);
    let mut m = Machine::new(DeviceProfile::nokia1(), &mut rng);
    let (pid, _) = m.add_process(
        "app",
        ProcKind::Foreground,
        Pages::from_mib(120),
        Pages::from_mib(80),
        Pages::from_mib(40),
        0.45,
    );
    let tid = m.add_thread(pid, "app", SchedClass::NORMAL);
    (m, pid, tid)
}

fn apply(m: &mut Machine, pid: ProcessId, tid: ThreadId, op: &Op) {
    match *op {
        Op::Work { us } => m.push_work(tid, us as f64, 0),
        Op::Alloc { mib } => {
            m.alloc_for(tid, pid, Pages::from_mib(mib as u64));
        }
        Op::Touch { mib } => m.touch_anon_for(tid, pid, Pages::from_mib(mib as u64)),
        Op::Quiet => {}
    }
}

/// Everything observable that the skip could corrupt, as one string.
fn fingerprint(m: &Machine) -> String {
    let times: Vec<String> = m
        .sched
        .threads()
        .iter()
        .map(|t| format!("{}:{:?}:{:?}", t.id.0, t.state, m.sched.times_of(t.id)))
        .collect();
    format!(
        "now={:?} vmstat={:?} free={:?} trim={:?} times={:?} events={:?} preempt={:?} instants={:?}",
        m.now(),
        m.mm.vmstat(),
        m.mm.free(),
        m.mm.trim_level(),
        times,
        m.trace.events(),
        m.trace.preemptions(),
        m.trace.instants(),
    )
}

/// The same property at the session level, via the `dense_ticks` debug
/// switch: a full pressured video session produces identical stats, series
/// and kernel counters whether or not the Runner skips.
#[test]
fn session_dense_ticks_switch_is_invisible() {
    use mvqoe_abr::FixedAbr;
    use mvqoe_core::{run_session, PressureMode, SessionConfig};
    use mvqoe_kernel::TrimLevel;
    use mvqoe_video::{Fps, Genre, Manifest, Resolution};

    let run = |dense: bool| {
        let mut cfg = SessionConfig::paper_default(
            DeviceProfile::nokia1(),
            PressureMode::Synthetic(TrimLevel::Moderate),
            42,
        );
        cfg.video_secs = 20.0;
        cfg.dense_ticks = dense;
        let manifest = Manifest::full_ladder(Genre::Travel, cfg.video_secs);
        let rep = manifest
            .representation(Resolution::R480p, Fps::F60)
            .unwrap();
        let out = run_session(&cfg, &mut FixedAbr::new(rep));
        format!(
            "stats={} kills={:?} trim={:?} lmkd={:?} vmstat={:?} final={:?} end={:?}",
            serde_json::to_string(&out.stats).unwrap(),
            out.kill_series,
            out.trim_series,
            out.lmkd_cpu_series,
            out.machine.mm.vmstat(),
            out.final_trim,
            out.machine.now(),
        )
    };

    assert_eq!(run(true), run(false));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dense_and_skipped_stepping_are_identical(
        seed in 0..64u64,
        schedule in schedule_strategy(),
    ) {
        // Dense twin: one step per 1 ms tick.
        let (mut dense, pid, tid) = build(seed);
        for (gap_ms, op) in &schedule {
            apply(&mut dense, pid, tid, op);
            for _ in 0..*gap_ms {
                dense.step();
            }
        }

        // Skipped twin: jump across provably-idle spans, bounded by the
        // next externally-scheduled op.
        let (mut skip, pid, tid) = build(seed);
        for (gap_ms, op) in &schedule {
            apply(&mut skip, pid, tid, op);
            let target = skip.now() + SimDuration::from_millis(*gap_ms as u64);
            while skip.now() < target {
                skip.advance_until(target);
                skip.step();
            }
        }

        prop_assert_eq!(fingerprint(&dense), fingerprint(&skip));
    }
}
