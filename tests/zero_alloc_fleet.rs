//! Proof that the warm fleet stepping path — including lmkd kill /
//! standing-app respawn churn — allocates exactly nothing.
//!
//! Same counting-allocator technique as `tests/zero_alloc.rs`, in its own
//! test binary so the two `#[global_allocator]`s never meet. One test fn:
//! counting windows must not overlap across threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use mvqoe_sim::{SimRng, SimTime};
use mvqoe_workload::{FleetBatch, FleetUser};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn counting_here() -> bool {
    COUNTING.try_with(|c| c.get()).unwrap_or(false)
}

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_here() {
            ALLOCS.fetch_add(1, Ordering::SeqCst);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if counting_here() {
            ALLOCS.fetch_add(1, Ordering::SeqCst);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_here() {
            ALLOCS.fetch_add(1, Ordering::SeqCst);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Count heap allocations made by this thread during `f`.
fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    f();
    COUNTING.with(|c| c.set(false));
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn warm_fleet_steps_without_allocating() {
    const USERS: u32 = 8;
    const WARM_SECS: u64 = 8 * 3600;
    const MEASURE_SECS: u64 = 2 * 3600;

    let root = SimRng::new(42);
    let users: Vec<FleetUser> = (0..USERS).map(|i| FleetUser::new(i, &root)).collect();
    let mut batch = FleetBatch::new(users);

    // Warm-up: hours of simulated life so every user has been through
    // screen-on sessions, lmkd kill storms, and standing-app respawns.
    // The process arena's free list and every scratch buffer reach their
    // steady-state capacity here.
    for s in 0..WARM_SECS {
        let now = SimTime::from_secs(s);
        for j in 0..batch.len() {
            batch.step_1s(j, now);
        }
    }

    let kills_before: u64 = (0..batch.len()).map(|j| batch.user(j).kills_observed()).sum();

    // Process ids are monotonic, so the pid→slot map grows with every
    // spawn regardless of how many slots recycle; reserve headroom for
    // the window's spawns so its amortized doubling cannot land inside
    // the counted region. 4096 covers the window's launches and respawns
    // (a few hundred per user) many times over.
    batch.reserve_spawns(4096);

    // The measured window: the same lockstep loop the fleet study runs.
    let n = count_allocs(|| {
        for s in WARM_SECS..WARM_SECS + MEASURE_SECS {
            let now = SimTime::from_secs(s);
            for j in 0..batch.len() {
                batch.step_1s(j, now);
            }
        }
    });

    // The window must actually contain churn, or "zero allocations" would
    // be a statement about an idle loop rather than about spawn/respawn
    // recycling through the arena.
    let kills_after: u64 = (0..batch.len()).map(|j| batch.user(j).kills_observed()).sum();
    let churn = kills_after - kills_before;
    assert!(
        churn > 0,
        "measurement window saw no lmkd kills; widen it so the claim covers churn"
    );
    assert_eq!(
        n, 0,
        "warm fleet stepping allocated {n} times across {MEASURE_SECS} s \
         with {churn} kills (and their respawns) in the window"
    );
}
