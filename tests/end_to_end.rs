//! Cross-crate integration tests: the paper's qualitative findings must
//! hold end-to-end through the full stack (kernel + scheduler + disk +
//! video pipeline + workloads).

use mvqoe::prelude::*;

fn cfg(device: DeviceProfile, pressure: PressureMode, secs: f64, seed: u64) -> SessionConfig {
    let mut c = SessionConfig::paper_default(device, pressure, seed);
    c.video_secs = secs;
    c
}

fn fixed(res: Resolution, fps: Fps, secs: f64) -> FixedAbr {
    let m = Manifest::full_ladder(Genre::Travel, secs);
    FixedAbr::new(m.representation(res, fps).unwrap())
}

/// Drop rates must be ordered by pressure state (the paper's core finding).
#[test]
fn drops_increase_with_pressure_on_nokia1() {
    let run = |pressure| {
        let c = cfg(DeviceProfile::nokia1(), pressure, 40.0, 5);
        let mut abr = fixed(Resolution::R720p, Fps::F60, 40.0);
        let out = run_session(&c, &mut abr);
        if out.stats.crashed() {
            100.0
        } else {
            out.stats.drop_pct()
        }
    };
    let normal = run(PressureMode::None);
    let moderate = run(PressureMode::Synthetic(TrimLevel::Moderate));
    let critical = run(PressureMode::Synthetic(TrimLevel::Critical));
    assert!(
        normal < moderate && moderate <= critical,
        "ordering violated: {normal:.1} / {moderate:.1} / {critical:.1}"
    );
}

/// Bigger devices fare better at the same configuration.
#[test]
fn more_ram_means_fewer_drops() {
    let run = |device| {
        let c = cfg(device, PressureMode::Synthetic(TrimLevel::Moderate), 40.0, 6);
        let mut abr = fixed(Resolution::R720p, Fps::F60, 40.0);
        let out = run_session(&c, &mut abr);
        if out.stats.crashed() {
            100.0
        } else {
            out.stats.drop_pct()
        }
    };
    let nokia = run(DeviceProfile::nokia1());
    let n6p = run(DeviceProfile::nexus6p());
    assert!(
        nokia > n6p + 5.0,
        "1 GB ({nokia:.1}%) must fare clearly worse than 3 GB ({n6p:.1}%)"
    );
}

/// The 1 GB device crashes under Critical pressure at high resolution
/// (paper Table 2: 100% crash rate).
#[test]
fn nokia1_crashes_under_critical() {
    let c = cfg(
        DeviceProfile::nokia1(),
        PressureMode::Synthetic(TrimLevel::Critical),
        40.0,
        7,
    );
    let mut abr = fixed(Resolution::R720p, Fps::F30, 40.0);
    let out = run_session(&c, &mut abr);
    assert!(out.stats.crashed(), "Critical + 720p must kill the client");
}

/// Crashes come from lmkd killing the foreground process, not from
/// simulation artifacts: the kill must be attributed.
#[test]
fn crashes_are_lmkd_kills() {
    let c = cfg(
        DeviceProfile::nokia1(),
        PressureMode::Synthetic(TrimLevel::Critical),
        30.0,
        8,
    );
    let mut abr = fixed(Resolution::R720p, Fps::F30, 30.0);
    let out = run_session(&c, &mut abr);
    assert!(out.stats.crashed());
    assert!(
        out.machine.mm.vmstat().lmkd_kills > 0,
        "lmkd must have been the killer"
    );
    assert!(out.machine.mm.proc(out.client_pid).dead);
}

/// Memory-aware adaptation beats a fixed 60 FPS policy under pressure
/// (the paper's §6 opportunity).
#[test]
fn memory_aware_abr_beats_fixed_under_pressure() {
    let secs = 60.0;
    let drops_of = |mk: &mut dyn FnMut() -> Box<dyn Abr>| {
        let c = cfg(
            DeviceProfile::nokia1(),
            PressureMode::Synthetic(TrimLevel::Moderate),
            secs,
            9,
        );
        let cell = run_cell(&c, 3, mk);
        cell.drop_pct.mean
    };
    let m = Manifest::full_ladder(Genre::Travel, secs);
    let rep = m.representation(Resolution::R720p, Fps::F60).unwrap();
    let fixed_drops = drops_of(&mut || Box::new(FixedAbr::new(rep)));
    let aware_drops = drops_of(&mut || {
        Box::new(MemoryAware::new(BufferBased::new(Fps::F60), Fps::F60))
    });
    assert!(
        aware_drops < fixed_drops * 0.7,
        "memory-aware ({aware_drops:.1}%) must clearly beat fixed 720p60 ({fixed_drops:.1}%)"
    );
}

/// Lowering the encoded frame rate rescues playback at a resolution that
/// is unplayable at 60 FPS (Fig. 16's core claim).
#[test]
fn frame_rate_reduction_rescues_1080p_on_nokia1() {
    let run = |fps| {
        let c = cfg(DeviceProfile::nokia1(), PressureMode::None, 30.0, 10);
        let mut abr = fixed(Resolution::R1080p, fps, 30.0);
        let out = run_session(&c, &mut abr);
        out.stats.drop_pct()
    };
    let at60 = run(Fps::F60);
    let at24 = run(Fps::F24);
    assert!(at60 > 50.0, "1080p60 must be broken ({at60:.1}%)");
    assert!(at24 < 10.0, "1080p24 must be watchable ({at24:.1}%)");
}

/// PSS grows with both resolution and frame rate (Fig. 8), measured live
/// through the memory manager, not the static model.
#[test]
fn pss_ordering_matches_fig8() {
    let pss = |res, fps| {
        let c = cfg(DeviceProfile::nexus5(), PressureMode::None, 40.0, 11);
        let mut abr = fixed(res, fps, 40.0);
        run_session(&c, &mut abr).stats.mean_pss_mib()
    };
    let low = pss(Resolution::R240p, Fps::F30);
    let high30 = pss(Resolution::R1080p, Fps::F30);
    let high60 = pss(Resolution::R1080p, Fps::F60);
    assert!(high30 > low + 25.0, "{low:.0} vs {high30:.0}");
    assert!(high60 > high30, "{high30:.0} vs {high60:.0}");
}

/// The ExoPlayer client drops far fewer frames than Firefox under pressure
/// (Appendix B) but is not crash-immune.
#[test]
fn exoplayer_drops_less_than_firefox() {
    let run = |player| {
        let mut c = cfg(
            DeviceProfile::nokia1(),
            PressureMode::None,
            30.0,
            12,
        );
        c.player = player;
        let mut abr = fixed(Resolution::R1080p, Fps::F60, 30.0);
        let out = run_session(&c, &mut abr);
        out.stats.drop_pct()
    };
    let firefox = run(PlayerKind::Firefox);
    let exo = run(PlayerKind::ExoPlayer);
    assert!(
        exo < firefox * 0.5,
        "ExoPlayer ({exo:.1}%) must drop far less than Firefox ({firefox:.1}%)"
    );
}

/// The kernel daemons show the paper's §5 signature under pressure:
/// kswapd and mmcqd both work much harder. Needs a paper-length session:
/// the extra mmcqd I/O only accumulates after the MP-Simulator ramp, so at
/// 40 s the mmcqd delta is lost in noise.
#[test]
fn daemons_work_harder_under_pressure() {
    let run = |pressure| {
        let c = cfg(DeviceProfile::nokia1(), pressure, 100.0, 13);
        let mut abr = fixed(Resolution::R480p, Fps::F60, 100.0);
        let out = run_session(&c, &mut abr);
        let m = &out.machine;
        (
            m.sched.times_of(m.kswapd_thread()).running.as_secs_f64(),
            m.sched.times_of(m.mmcqd_thread()).running.as_secs_f64(),
        )
    };
    let (kswapd_n, mmcqd_n) = run(PressureMode::None);
    let (kswapd_m, mmcqd_m) = run(PressureMode::Synthetic(TrimLevel::Moderate));
    assert!(
        kswapd_m > kswapd_n * 3.0 + 0.2,
        "kswapd {kswapd_n:.2}s → {kswapd_m:.2}s must explode"
    );
    assert!(
        mmcqd_m > mmcqd_n,
        "mmcqd {mmcqd_n:.2}s → {mmcqd_m:.2}s must grow"
    );
}

/// Sessions are deterministic per seed across the whole stack.
#[test]
fn end_to_end_determinism() {
    let run = || {
        let c = cfg(
            DeviceProfile::nexus5(),
            PressureMode::Synthetic(TrimLevel::Moderate),
            30.0,
            99,
        );
        let mut abr = fixed(Resolution::R720p, Fps::F60, 30.0);
        let out = run_session(&c, &mut abr);
        (
            out.stats.frames_rendered,
            out.stats.frames_dropped,
            out.stats.crashed_at,
            out.machine.mm.vmstat().lmkd_kills,
        )
    };
    assert_eq!(run(), run());
}

/// Memory accounting holds after a full pressured session.
#[test]
fn page_accounting_survives_a_session() {
    let c = cfg(
        DeviceProfile::nokia1(),
        PressureMode::Synthetic(TrimLevel::Moderate),
        30.0,
        14,
    );
    let mut abr = fixed(Resolution::R480p, Fps::F60, 30.0);
    let out = run_session(&c, &mut abr);
    assert_eq!(
        out.machine.mm.accounted_pages(),
        out.machine.mm.config().usable()
    );
}
