//! Serial-vs-parallel equivalence: the parallel experiment engine must
//! produce results byte-identical to the serial reference path at every
//! worker count. This is the determinism contract `--jobs` rests on — the
//! worker pool may interleave sessions in any order, but every session's
//! randomness is a pure function of its grid coordinates.

use mvqoe::prelude::*;
use std::sync::Arc;

/// A small but non-trivial grid: two devices × two pressure states, with a
/// mix of clean and struggling cells so crashes are represented.
fn specs() -> Vec<CellSpec<'static>> {
    let mut specs = Vec::new();
    for device in [DeviceProfile::nokia1(), DeviceProfile::nexus5()] {
        for pressure in [
            PressureMode::None,
            PressureMode::Synthetic(TrimLevel::Moderate),
        ] {
            let mut cfg = SessionConfig::paper_default(device.clone(), pressure, 42);
            cfg.video_secs = 16.0;
            let make_abr: AbrFactory<'static> = Arc::new(|| {
                let m = Manifest::full_ladder(Genre::Travel, 16.0);
                let rep = m.representation(Resolution::R480p, Fps::F60).unwrap();
                Box::new(FixedAbr::new(rep))
            });
            specs.push(CellSpec {
                cfg,
                n_runs: 3,
                make_abr,
            });
        }
    }
    specs
}

/// Byte-exact view of a cell result (serde_json is deterministic: map keys
/// come out in insertion order and floats format canonically).
fn bytes(cells: &[CellResult]) -> Vec<String> {
    cells
        .iter()
        .map(|c| serde_json::to_string(c).unwrap())
        .collect()
}

/// The serial reference: each cell at its grid coordinates via
/// `run_cell_at`, in order, on the calling thread.
fn serial_reference(experiment: &str) -> Vec<String> {
    let cells: Vec<CellResult> = specs()
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            run_cell_at(experiment, i as u64, &spec.cfg, spec.n_runs, &mut || {
                (spec.make_abr)()
            })
        })
        .collect();
    bytes(&cells)
}

#[test]
fn parallel_engine_matches_serial_at_1_2_and_8_workers() {
    let reference = serial_reference("equivalence");
    for workers in [1, 2, 8] {
        let specs = specs();
        let parallel = bytes(&run_cells_parallel("equivalence", &specs, workers));
        assert_eq!(
            reference, parallel,
            "parallel engine at {workers} workers diverged from the serial reference"
        );
    }
}

#[test]
fn two_parallel_runs_with_same_base_seed_are_identical() {
    let specs_a = specs();
    let specs_b = specs();
    let a = bytes(&run_cells_parallel("repeat", &specs_a, 8));
    let b = bytes(&run_cells_parallel("repeat", &specs_b, 8));
    assert_eq!(a, b, "same base seed + coordinates must replay exactly");
}

#[test]
fn different_experiment_ids_draw_from_unrelated_streams() {
    let specs_a = specs();
    let a = bytes(&run_cells_parallel("stream-a", &specs_a, 2));
    let b = bytes(&run_cells_parallel("stream-b", &specs_a, 2));
    assert_ne!(a, b, "experiment id must enter the seed derivation");
}

#[test]
fn run_cell_still_matches_anonymous_coordinates() {
    // The legacy serial entry point is defined as run_cell_at("cell", 0, ..).
    let spec = &specs()[0];
    let via_run_cell = run_cell(&spec.cfg, spec.n_runs, &mut || (spec.make_abr)());
    let via_coordinates = run_cell_at("cell", 0, &spec.cfg, spec.n_runs, &mut || {
        (spec.make_abr)()
    });
    assert_eq!(
        serde_json::to_string(&via_run_cell).unwrap(),
        serde_json::to_string(&via_coordinates).unwrap()
    );
}
