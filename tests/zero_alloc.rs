//! The per-tick hot path must not allocate once buffers are warm.
//!
//! The event-driven engine reuses machine-owned scratch (`StepOutputs`,
//! scheduler selection buffers, drain targets); this test proves the claim
//! with a counting global allocator rather than asserting it in prose. The
//! counter only counts the measuring thread: libtest's harness thread
//! allocates lazily (e.g. its completion-channel context on first blocking
//! recv), and on a loaded single-core host that init can land inside any
//! counted window. One test function only, so windows never overlap.

use mvqoe_device::{DeviceProfile, Machine, StepOutputs};
use mvqoe_sim::{SimDuration, SimRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// const-initialized so reading it from inside the allocator never itself
// allocates (no lazy TLS init on the measuring thread).
thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn counting_here() -> bool {
    COUNTING.try_with(|c| c.get()).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_here() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if counting_here() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_here() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Count heap allocations made by this thread during `f`.
fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    f();
    COUNTING.with(|c| c.set(false));
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn warm_machine_steps_without_allocating() {
    let mut rng = SimRng::new(7);
    let mut m = Machine::new(DeviceProfile::nexus5(), &mut rng);
    // Sched events would accumulate in the trace without bound; the bulk
    // experiment grid runs with recording off, so measure that path.
    m.sched.set_record_events(false);

    // Warm-up: grow every scratch buffer to steady-state capacity. Two
    // seconds cover many lmkd polls (25–300 ms cadence) and ambient bursts
    // (50 ms cadence).
    m.run_idle(SimDuration::from_secs(2));

    // The event-driven idle loop: zero allocations per run.
    let n = count_allocs(|| m.run_idle(SimDuration::from_secs(2)));
    assert_eq!(n, 0, "run_idle allocated {n} times after warm-up");

    // The dense per-tick path with a caller-owned output buffer: the same
    // guarantee holds without the skip.
    let mut out = StepOutputs::default();
    m.step_into(&mut out); // warm the caller-owned buffer
    let n = count_allocs(|| {
        for _ in 0..2_000 {
            m.step_into(&mut out);
        }
    });
    assert_eq!(n, 0, "dense step_into allocated {n} times after warm-up");

    // The snapshot/restore path: a machine rebuilt from its serialized
    // form regrows its scratch (selection buffers, drain targets are
    // deliberately *not* serialized) during warm-up and then holds the
    // same zero-allocation guarantee on both engines.
    use serde::{Deserialize, Serialize};
    let mut r = Machine::from_value(&m.to_value()).expect("machine round-trips");
    r.sched.set_record_events(false);
    r.run_idle(SimDuration::from_secs(2));
    let n = count_allocs(|| r.run_idle(SimDuration::from_secs(2)));
    assert_eq!(n, 0, "restored run_idle allocated {n} times after warm-up");

    let mut out = StepOutputs::default();
    r.step_into(&mut out);
    let n = count_allocs(|| {
        for _ in 0..2_000 {
            r.step_into(&mut out);
        }
    });
    assert_eq!(n, 0, "restored step_into allocated {n} times after warm-up");
}
