//! Property test: causal attribution is *conservative*.
//!
//! The attribution engine's contract is that blame is a partition, not a
//! sample: every rebuffer microsecond and every dropped frame lands in
//! exactly one cause bucket, so the per-cause vectors sum exactly — as
//! integers, not within a tolerance — to the session's own QoE totals.
//! This must hold on the dense (tick-per-ms) engine and the event-skipping
//! engine alike, and the two must agree on the blame itself, across random
//! devices, pressure levels, ABRs, seeds and video lengths.

use mvqoe::prelude::*;
use proptest::prelude::*;

/// Run one attributed session and return its outcome.
fn run(
    device: u8,
    trim: u8,
    abr_kind: u8,
    seed_cell: u32,
    video_secs: f64,
    dense: bool,
) -> SessionOutcome {
    let device = match device {
        0 => DeviceProfile::nokia1(),
        _ => DeviceProfile::nexus5(),
    };
    let pressure = match trim {
        0 => PressureMode::None,
        1 => PressureMode::Synthetic(TrimLevel::Moderate),
        _ => PressureMode::Synthetic(TrimLevel::Critical),
    };
    let mut cfg = SessionConfig::paper_default(
        device,
        pressure,
        derive_seed(42, "attribution-conservation", seed_cell as u64, 0),
    );
    cfg.video_secs = video_secs;
    cfg.dense_ticks = dense;
    cfg.attribution = true;
    let manifest = Manifest::full_ladder(Genre::Travel, cfg.video_secs);
    match abr_kind {
        0 => {
            let rep = manifest.representation(Resolution::R480p, Fps::F60).unwrap();
            run_session(&cfg, &mut FixedAbr::new(rep))
        }
        1 => {
            let rep = manifest.representation(Resolution::R720p, Fps::F30).unwrap();
            run_session(&cfg, &mut FixedAbr::new(rep))
        }
        _ => run_session(&cfg, &mut BufferBased::new(Fps::F60)),
    }
}

/// Exact-integer conservation: the per-cause vectors partition the
/// session's own rebuffer clock and drop counter.
fn assert_conservative(out: &SessionOutcome, label: &str) -> Result<(), TestCaseError> {
    let rep = out.attribution.as_ref().expect("attribution was enabled");
    prop_assert_eq!(
        rep.rebuffer_us.iter().sum::<u64>(),
        out.stats.rebuffer_time.as_micros(),
        "{}: rebuffer blame must sum to the session's rebuffer clock",
        label
    );
    prop_assert_eq!(
        rep.drops.iter().sum::<u64>(),
        out.stats.frames_dropped,
        "{}: drop blame must sum to the session's drop counter",
        label
    );
    // Each record's lag is within the recency window by construction.
    for r in &rep.records {
        prop_assert!(r.cause_at <= r.at, "{}: cause precedes effect", label);
    }
    Ok(())
}

/// A report rendered for equality: blame must be engine-invariant.
fn fingerprint(out: &SessionOutcome) -> String {
    let rep = out.attribution.as_ref().unwrap();
    format!(
        "rebuffer_us={:?} drops={:?} records={} dropped={} first={:?}",
        rep.rebuffer_us,
        rep.drops,
        rep.records.len(),
        rep.records_dropped,
        rep.records.first().map(|r| (r.cause, r.effect, r.at, r.lag_us)),
    )
}

proptest! {
    // Sessions are whole-machine runs (~50-300 ms each, twice per case);
    // a dozen cases keeps the suite under a minute while still sweeping
    // both devices, all three pressure levels and all three ABRs.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn blame_partitions_the_falter_budget_on_both_engines(
        device in 0..2u8,
        trim in 0..3u8,
        abr_kind in 0..3u8,
        seed_cell in 0..16u32,
        video_secs in 12..28u32,
    ) {
        let secs = video_secs as f64;
        let skip = run(device, trim, abr_kind, seed_cell, secs, false);
        assert_conservative(&skip, "skipping")?;

        let dense = run(device, trim, abr_kind, seed_cell, secs, true);
        assert_conservative(&dense, "dense")?;

        // The two engines must not just each be conservative — they must
        // tell the same story.
        prop_assert_eq!(fingerprint(&skip), fingerprint(&dense));
    }
}

/// Pin one known-faltering scenario as a plain test so the property above
/// is never vacuous: the Nokia 1 under Moderate pressure with a
/// device-blind ABR really does rebuffer, and the blame lands on memory.
#[test]
fn pressured_nokia_blame_is_nonzero_and_memory_led() {
    let out = run(0, 1, 2, 3, 48.0, false);
    let rep = out.attribution.as_ref().unwrap();
    assert!(rep.total_rebuffer_us() > 0, "scenario must rebuffer: {rep:?}");
    assert_eq!(
        rep.rebuffer_us.iter().sum::<u64>(),
        out.stats.rebuffer_time.as_micros()
    );
    assert_eq!(rep.drops.iter().sum::<u64>(), out.stats.frames_dropped);
    assert!(
        rep.memory_rebuffer_us() > rep.network_rebuffer_us(),
        "Moderate pressure on a LAN blames memory, not the network: {rep:?}"
    );
}
