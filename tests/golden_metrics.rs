//! Golden-metrics regression test: three paper-critical cells at quick
//! scale, compared against a checked-in fixture with zero tolerance.
//!
//! The simulation is fully deterministic for a fixed base seed, so any
//! diff here means the metric pipeline changed behaviour — a refactor that
//! was supposed to be equivalence-preserving was not. To re-bless after an
//! intentional change: `GOLDEN_BLESS=1 cargo test --test golden_metrics`
//! and commit the updated fixture.
//!
//! The three cells pin the paper's headline claims:
//! * the Nokia 1 cannot survive Critical pressure (crash),
//! * the Nexus 5 degrades but survives Moderate pressure (drop rate),
//! * memory-aware ABR beats a network-only baseline under pressure.

use mvqoe::prelude::*;
use mvqoe_experiments::{framedrops, Scale};
use serde_json::to_string_pretty;
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/metrics.json")
}

/// One golden record: the metrics we pin, rounded nowhere — zero tolerance.
#[derive(serde::Serialize)]
struct Golden {
    nokia1_critical: framedrops::GridCell,
    nexus5_moderate: framedrops::GridCell,
    memory_aware_drop_pct: f64,
    buffer_based_drop_pct: f64,
}

fn measure() -> Golden {
    let scale = Scale::quick();

    // Cell 1 — Nokia 1, 720p60 under Critical: the paper's "unplayable or
    // crashed" regime.
    let nokia1_critical = framedrops::run_one_cell(
        &DeviceProfile::nokia1(),
        PlayerKind::Firefox,
        Genre::Travel,
        Resolution::R720p,
        Fps::F60,
        PressureMode::Synthetic(TrimLevel::Critical),
        &scale,
    );

    // Cell 2 — Nexus 5, 1080p60 under Moderate: degraded but alive.
    let nexus5_moderate = framedrops::run_one_cell(
        &DeviceProfile::nexus5(),
        PlayerKind::Firefox,
        Genre::Travel,
        Resolution::R1080p,
        Fps::F60,
        PressureMode::Synthetic(TrimLevel::Moderate),
        &scale,
    );

    // Cell 3 — memory-aware ABR vs the buffer-based baseline on the
    // pressured Nokia 1 (the §6 opportunity).
    let mut cfg = SessionConfig::paper_default(
        DeviceProfile::nokia1(),
        PressureMode::Synthetic(TrimLevel::Moderate),
        scale.seed,
    );
    cfg.video_secs = scale.video_secs;
    let memory_aware = run_cell_at("golden/abr", 0, &cfg, scale.runs, &mut || {
        Box::new(MemoryAware::new(BufferBased::new(Fps::F60), Fps::F60))
    });
    let buffer_based = run_cell_at("golden/abr", 1, &cfg, scale.runs, &mut || {
        Box::new(BufferBased::new(Fps::F60))
    });

    Golden {
        nokia1_critical,
        nexus5_moderate,
        memory_aware_drop_pct: memory_aware.drop_pct.mean,
        buffer_based_drop_pct: buffer_based.drop_pct.mean,
    }
}

#[test]
fn golden_metrics_match_fixture_exactly() {
    let golden = measure();

    // The qualitative claims must hold regardless of the fixture.
    assert!(
        golden.nokia1_critical.crash_pct > 0.0,
        "Nokia 1 must crash under Critical: {:?}",
        golden.nokia1_critical
    );
    assert!(
        golden.nexus5_moderate.crash_pct < 100.0
            && golden.nexus5_moderate.drop_mean > 0.0
            && golden.nexus5_moderate.drop_mean < 100.0,
        "Nexus 5 must degrade but survive Moderate: {:?}",
        golden.nexus5_moderate
    );
    assert!(
        golden.memory_aware_drop_pct < golden.buffer_based_drop_pct,
        "memory-aware ABR must beat the network-only baseline: {} vs {}",
        golden.memory_aware_drop_pct,
        golden.buffer_based_drop_pct
    );

    let serialized = to_string_pretty(&golden).unwrap();
    let path = fixture_path();
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &serialized).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run GOLDEN_BLESS=1 cargo test --test golden_metrics",
            path.display()
        )
    });
    assert_eq!(
        expected.trim(),
        serialized.trim(),
        "golden metrics diverged from {} — if intentional, re-bless with GOLDEN_BLESS=1",
        path.display()
    );
}
