//! # mvqoe — memory pressure and mobile video QoE
//!
//! A full-system Rust reproduction of *"Coal Not Diamonds: How Memory
//! Pressure Falters Mobile Video QoE"* (Waheed, Akhtar, Qazi, Qazi —
//! CoNEXT '22): a simulated Android memory-management stack (zRAM, kswapd,
//! lmkd, mmcqd), a multi-core scheduler, an eMMC storage model, a DASH
//! video pipeline, the paper's three test devices, its user-study fleet,
//! and regenerators for every table and figure in its evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use mvqoe::prelude::*;
//!
//! // Stream 16 s of 480p30 video on a Nexus 5 with no memory pressure…
//! let mut cfg = SessionConfig::paper_default(
//!     DeviceProfile::nexus5(),
//!     PressureMode::None,
//!     42,
//! );
//! cfg.video_secs = 16.0;
//! let manifest = Manifest::full_ladder(Genre::Travel, cfg.video_secs);
//! let rep = manifest.representation(Resolution::R480p, Fps::F30).unwrap();
//! let mut abr = FixedAbr::new(rep);
//! let outcome = run_session(&cfg, &mut abr);
//!
//! // …and playback is clean.
//! assert!(!outcome.stats.crashed());
//! assert!(outcome.stats.drop_pct() < 2.0);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |---|---|
//! | [`sim`] | discrete-event core: clock, seeded RNG, statistics |
//! | [`kernel`] | Android-like memory management (paper §2) |
//! | [`sched`] | multi-core CFS+RT scheduler with state accounting |
//! | [`storage`] | eMMC + I/O queue (mmcqd's work source) |
//! | [`net`] | LAN link + DASH segment server |
//! | [`video`] | ladder, players, memory & decode cost models |
//! | [`abr`] | network baselines + the memory-aware controller |
//! | [`device`] | device profiles + the assembled machine |
//! | [`workload`] | MP Simulator, organic apps, fleet usage model |
//! | [`trace`] | Perfetto-like tracing, Chrome trace export + §5 queries |
//! | [`metrics`] | cross-layer counters/gauges/histograms registry |
//! | [`study`] | fleet study + DMOS survey (§3, §4.3) |
//! | [`core`] | end-to-end streaming sessions + QoE aggregation |
//! | [`experiments`] | one regenerator per table/figure |

pub use mvqoe_abr as abr;
pub use mvqoe_core as core;
pub use mvqoe_device as device;
pub use mvqoe_experiments as experiments;
pub use mvqoe_kernel as kernel;
pub use mvqoe_metrics as metrics;
pub use mvqoe_net as net;
pub use mvqoe_sched as sched;
pub use mvqoe_sim as sim;
pub use mvqoe_storage as storage;
pub use mvqoe_study as study;
pub use mvqoe_trace as trace;
pub use mvqoe_video as video;
pub use mvqoe_workload as workload;

/// The most common imports in one place.
pub mod prelude {
    pub use mvqoe_abr::{
        Abr, AbrContext, Bola, BufferBased, FixedAbr, MemoryAware, ScheduledFps,
        ThroughputBased,
    };
    pub use mvqoe_core::{
        parallel_map, run_cell, run_cell_at, run_cells_parallel, run_session, run_session_with,
        AbrFactory, AttributionReport, Cause, CauseRecord, CellResult, CellSpec, Effect,
        PressureMode, SessionConfig, SessionOutcome,
    };
    pub use mvqoe_device::{DeviceProfile, Machine};
    pub use mvqoe_kernel::{MemoryManager, Pages, ProcKind, TrimLevel};
    pub use mvqoe_metrics::{MetricsSnapshot, Telemetry};
    pub use mvqoe_trace::{chrome_trace_json, write_chrome_trace};
    pub use mvqoe_sim::{derive_seed, SimDuration, SimRng, SimTime};
    pub use mvqoe_video::{
        Fps, Genre, Manifest, PlayerKind, Representation, Resolution, SessionStats,
    };
    pub use mvqoe_workload::{BackgroundApps, FleetUser, MpSimulator, UsagePattern};
}
